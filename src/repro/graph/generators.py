"""Synthetic graph generators.

The paper evaluates on six public graphs up to 6.6 B edges.  This
reproduction cannot ship those datasets, so :mod:`repro.datasets` composes
the generators below into scaled stand-ins whose degree-distribution shape
matches each original (power-law for the social graphs, locally-clustered
for the web graph).  The generators are self-contained — no networkx
dependency in the library itself — and all take a seedable RNG.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import GraphFormatError
from ..rng import RngLike, ensure_rng
from .builder import from_edges
from .csr import CSRGraph


def erdos_renyi_graph(num_nodes: int, edge_prob: float, rng: RngLike = None) -> CSRGraph:
    """G(n, p) random graph (undirected, no self loops).

    Uses the geometric-skipping trick so the cost is proportional to the
    number of generated edges, not to ``n^2``.
    """
    if num_nodes < 0:
        raise GraphFormatError("num_nodes must be non-negative")
    if not 0.0 <= edge_prob <= 1.0:
        raise GraphFormatError("edge_prob must be in [0, 1]")
    gen = ensure_rng(rng)
    if num_nodes < 2 or edge_prob == 0.0:
        return from_edges(np.empty((0, 2), dtype=np.int64), num_nodes=num_nodes)
    sources: list[int] = []
    targets: list[int] = []
    if edge_prob >= 1.0:
        for u in range(num_nodes):
            for v in range(u + 1, num_nodes):
                sources.append(u)
                targets.append(v)
    else:
        # Iterate over the upper-triangular cell index with geometric jumps.
        log_q = np.log1p(-edge_prob)
        v, w = 1, -1
        while v < num_nodes:
            r = gen.random()
            w += 1 + int(np.log1p(-r) / log_q)
            while w >= v and v < num_nodes:
                w -= v
                v += 1
            if v < num_nodes:
                sources.append(w)
                targets.append(v)
    edges = np.column_stack(
        (np.asarray(sources, dtype=np.int64), np.asarray(targets, dtype=np.int64))
    )
    return from_edges(edges, num_nodes=num_nodes)


def barabasi_albert_graph(num_nodes: int, attach: int, rng: RngLike = None) -> CSRGraph:
    """Barabási–Albert preferential-attachment graph.

    Each new node attaches to ``attach`` distinct existing nodes chosen with
    probability proportional to their degree; yields a power-law degree
    distribution like the paper's social graphs.
    """
    if attach < 1:
        raise GraphFormatError("attach must be >= 1")
    if num_nodes <= attach:
        raise GraphFormatError("num_nodes must exceed attach")
    gen = ensure_rng(rng)
    # repeated_nodes holds one entry per half-edge: sampling uniformly from
    # it is sampling proportional to degree.
    repeated: list[int] = list(range(attach))
    sources: list[int] = []
    targets: list[int] = []
    for new_node in range(attach, num_nodes):
        chosen: set[int] = set()
        while len(chosen) < attach:
            if repeated:
                candidate = repeated[int(gen.integers(len(repeated)))]
            else:  # very first node: attach to the seed clique uniformly
                candidate = int(gen.integers(new_node))
            chosen.add(candidate)
        for t in chosen:
            sources.append(new_node)
            targets.append(t)
            repeated.append(new_node)
            repeated.append(t)
    edges = np.column_stack(
        (np.asarray(sources, dtype=np.int64), np.asarray(targets, dtype=np.int64))
    )
    return from_edges(edges, num_nodes=num_nodes)


def powerlaw_cluster_graph(
    num_nodes: int, attach: int, triangle_prob: float, rng: RngLike = None
) -> CSRGraph:
    """Holme–Kim power-law graph with tunable clustering.

    Like :func:`barabasi_albert_graph` but after each preferential
    attachment, with probability ``triangle_prob`` the next link closes a
    triangle with a random neighbour of the previous target.  Produces
    graphs with many common neighbours — important here because the
    bounding constants of Theorem 1 shrink as ``θ_uv`` (common-neighbour
    count) grows.
    """
    if not 0.0 <= triangle_prob <= 1.0:
        raise GraphFormatError("triangle_prob must be in [0, 1]")
    if attach < 1:
        raise GraphFormatError("attach must be >= 1")
    if num_nodes <= attach:
        raise GraphFormatError("num_nodes must exceed attach")
    gen = ensure_rng(rng)
    repeated: list[int] = list(range(attach))
    adjacency: list[set[int]] = [set() for _ in range(num_nodes)]
    sources: list[int] = []
    targets: list[int] = []

    def _link(u: int, v: int) -> None:
        sources.append(u)
        targets.append(v)
        adjacency[u].add(v)
        adjacency[v].add(u)
        repeated.append(u)
        repeated.append(v)

    for new_node in range(attach, num_nodes):
        made = 0
        last_target: int | None = None
        while made < attach:
            close_triangle = (
                last_target is not None
                and gen.random() < triangle_prob
                and adjacency[last_target]
            )
            if close_triangle:
                neighbours = [
                    n for n in adjacency[last_target] if n != new_node and n not in adjacency[new_node]
                ]
                if neighbours:
                    candidate = neighbours[int(gen.integers(len(neighbours)))]
                    _link(new_node, candidate)
                    made += 1
                    last_target = candidate
                    continue
            candidate = repeated[int(gen.integers(len(repeated)))]
            if candidate != new_node and candidate not in adjacency[new_node]:
                _link(new_node, candidate)
                made += 1
                last_target = candidate
    edges = np.column_stack(
        (np.asarray(sources, dtype=np.int64), np.asarray(targets, dtype=np.int64))
    )
    return from_edges(edges, num_nodes=num_nodes)


def watts_strogatz_graph(
    num_nodes: int, nearest: int, rewire_prob: float, rng: RngLike = None
) -> CSRGraph:
    """Watts–Strogatz small-world ring lattice with random rewiring."""
    if nearest % 2 or nearest < 2:
        raise GraphFormatError("nearest must be an even integer >= 2")
    if num_nodes <= nearest:
        raise GraphFormatError("num_nodes must exceed nearest")
    if not 0.0 <= rewire_prob <= 1.0:
        raise GraphFormatError("rewire_prob must be in [0, 1]")
    gen = ensure_rng(rng)
    edge_set: set[tuple[int, int]] = set()
    for u in range(num_nodes):
        for k in range(1, nearest // 2 + 1):
            v = (u + k) % num_nodes
            edge_set.add((min(u, v), max(u, v)))
    edges = sorted(edge_set)
    rewired: set[tuple[int, int]] = set(edges)
    for u, v in edges:
        if gen.random() < rewire_prob:
            for _ in range(32):  # bounded retries to find a fresh endpoint
                w = int(gen.integers(num_nodes))
                cand = (min(u, w), max(u, w))
                if w != u and cand not in rewired:
                    rewired.discard((u, v))
                    rewired.add(cand)
                    break
    arr = np.asarray(sorted(rewired), dtype=np.int64)
    return from_edges(arr, num_nodes=num_nodes)


def stochastic_block_model(
    block_sizes: list[int] | tuple[int, ...],
    p_in: float,
    p_out: float,
    rng: RngLike = None,
) -> CSRGraph:
    """Planted-partition stochastic block model.

    Nodes are grouped into consecutive blocks of the given sizes; node
    pairs connect with probability ``p_in`` inside a block and ``p_out``
    across blocks.  The community ground truth that node2vec embeddings
    are expected to recover — used by the classification and link
    prediction applications.
    """
    if not block_sizes or any(s < 1 for s in block_sizes):
        raise GraphFormatError("block sizes must be positive")
    if not (0.0 <= p_in <= 1.0 and 0.0 <= p_out <= 1.0):
        raise GraphFormatError("probabilities must be in [0, 1]")
    gen = ensure_rng(rng)
    boundaries = np.cumsum([0, *block_sizes])
    num_nodes = int(boundaries[-1])
    block_of = np.empty(num_nodes, dtype=np.int64)
    for b, (lo, hi) in enumerate(zip(boundaries, boundaries[1:])):
        block_of[lo:hi] = b
    sources: list[int] = []
    targets: list[int] = []
    for i in range(num_nodes):
        for j in range(i + 1, num_nodes):
            p = p_in if block_of[i] == block_of[j] else p_out
            if p > 0 and gen.random() < p:
                sources.append(i)
                targets.append(j)
    edges = np.column_stack(
        (np.asarray(sources, dtype=np.int64), np.asarray(targets, dtype=np.int64))
    ) if sources else np.empty((0, 2), dtype=np.int64)
    return from_edges(edges, num_nodes=num_nodes)


def sbm_block_labels(block_sizes: list[int] | tuple[int, ...]) -> np.ndarray:
    """Ground-truth block label per node for :func:`stochastic_block_model`."""
    boundaries = np.cumsum([0, *block_sizes])
    labels = np.empty(int(boundaries[-1]), dtype=np.int64)
    for b, (lo, hi) in enumerate(zip(boundaries, boundaries[1:])):
        labels[lo:hi] = b
    return labels


def complete_graph(num_nodes: int) -> CSRGraph:
    """Clique on ``num_nodes`` nodes."""
    pairs = [(u, v) for u in range(num_nodes) for v in range(u + 1, num_nodes)]
    edges = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
    return from_edges(edges, num_nodes=num_nodes)


def star_graph(num_leaves: int) -> CSRGraph:
    """Node 0 connected to ``num_leaves`` leaves."""
    edges = np.column_stack(
        (
            np.zeros(num_leaves, dtype=np.int64),
            np.arange(1, num_leaves + 1, dtype=np.int64),
        )
    )
    return from_edges(edges, num_nodes=num_leaves + 1)


def cycle_graph(num_nodes: int) -> CSRGraph:
    """Simple cycle ``0 - 1 - ... - (n-1) - 0``."""
    if num_nodes < 3:
        raise GraphFormatError("cycle needs at least 3 nodes")
    nodes = np.arange(num_nodes, dtype=np.int64)
    edges = np.column_stack((nodes, np.roll(nodes, -1)))
    return from_edges(edges, num_nodes=num_nodes)


def grid_graph(rows: int, cols: int) -> CSRGraph:
    """2-D grid lattice with 4-neighbour connectivity."""
    if rows < 1 or cols < 1:
        raise GraphFormatError("grid dimensions must be positive")
    pairs: list[tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                pairs.append((node, node + 1))
            if r + 1 < rows:
                pairs.append((node, node + cols))
    edges = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
    return from_edges(edges, num_nodes=rows * cols)
