"""Graph statistics: degrees, triangles, common neighbours.

Triangle counting matters here because computing exact bounding constants
for the whole graph "has the same complexity as the one of triangle
counting" (Section 3.3); the statistics below also feed the dataset
registry and the experiment reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CSRGraph


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics in the shape of the paper's Table 2."""

    num_nodes: int
    num_edges: int          # stored directed edges
    average_degree: float
    max_degree: int
    min_degree: int
    memory_bytes: int       # modeled M_g
    triangles: int | None = None

    def describe(self) -> str:
        """One-line human-readable summary."""
        tri = f", triangles={self.triangles}" if self.triangles is not None else ""
        return (
            f"|V|={self.num_nodes}, |E|={self.num_edges}, "
            f"d_avg={self.average_degree:.1f}, d_max={self.max_degree}, "
            f"M_g={self.memory_bytes / 1e6:.1f}MB{tri}"
        )


def compute_stats(graph: CSRGraph, *, with_triangles: bool = False) -> GraphStats:
    """Compute :class:`GraphStats` for ``graph``."""
    degs = graph.degrees
    return GraphStats(
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        average_degree=float(degs.mean()) if len(degs) else 0.0,
        max_degree=int(degs.max()) if len(degs) else 0,
        min_degree=int(degs.min()) if len(degs) else 0,
        memory_bytes=graph.memory_bytes(),
        triangles=triangle_count(graph) if with_triangles else None,
    )


def common_neighbor_count(graph: CSRGraph, u: int, v: int) -> int:
    """``θ_uv``: number of common neighbours of ``u`` and ``v``.

    Sorted-merge intersection of the two adjacency rows.
    """
    a, b = graph.neighbors(u), graph.neighbors(v)
    if len(a) == 0 or len(b) == 0:
        return 0
    return int(len(np.intersect1d(a, b, assume_unique=True)))


def common_neighbors(graph: CSRGraph, u: int, v: int) -> np.ndarray:
    """The sorted array of common neighbours of ``u`` and ``v``."""
    return np.intersect1d(graph.neighbors(u), graph.neighbors(v), assume_unique=True)


def triangle_count(graph: CSRGraph) -> int:
    """Total number of triangles in the (undirected) graph.

    Forward algorithm: orient each edge from lower to higher degree (ties by
    id) and intersect forward-adjacency lists — ``O(|E|^{3/2})`` like the
    main-memory algorithms the paper cites.
    """
    n = graph.num_nodes
    degs = graph.degrees
    rank = np.lexsort((np.arange(n), degs))  # increasing degree, ties by id
    position = np.empty(n, dtype=np.int64)
    position[rank] = np.arange(n)

    forward: list[np.ndarray] = []
    for v in range(n):
        nbrs = graph.neighbors(v)
        fw = nbrs[position[nbrs] > position[v]]
        forward.append(np.sort(fw))

    triangles = 0
    for v in range(n):
        fw = forward[v]
        for w in fw:
            triangles += len(np.intersect1d(fw, forward[int(w)], assume_unique=True))
    return triangles


def local_clustering_coefficient(graph: CSRGraph, v: int) -> float:
    """Fraction of closed wedges centred at ``v``."""
    nbrs = graph.neighbors(v)
    d = len(nbrs)
    if d < 2:
        return 0.0
    links = 0
    nbr_set = set(map(int, nbrs))
    for u in nbrs:
        links += sum(1 for w in graph.neighbors(int(u)) if int(w) in nbr_set)
    return links / (d * (d - 1))


def degree_histogram(graph: CSRGraph) -> np.ndarray:
    """``hist[k]`` = number of nodes with degree ``k``."""
    degs = graph.degrees
    if len(degs) == 0:
        return np.zeros(1, dtype=np.int64)
    return np.bincount(degs)
