"""Edge-list to CSR conversion.

The paper processes all of its datasets into undirected graphs
(Section 6.1); :func:`from_edges` therefore symmetrises by default, removes
self-loops, and merges duplicate edges by summing their weights.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..exceptions import GraphFormatError
from .csr import CSRGraph


class GraphBuilder:
    """Incrementally collects edges and produces a :class:`CSRGraph`.

    Example
    -------
    >>> b = GraphBuilder()
    >>> b.add_edge(0, 1)
    >>> b.add_edge(1, 2, weight=2.0)
    >>> g = b.build()
    >>> g.num_nodes, g.num_edges
    (3, 4)
    """

    def __init__(self, *, undirected: bool = True, allow_self_loops: bool = False) -> None:
        self._sources: list[int] = []
        self._targets: list[int] = []
        self._weights: list[float] = []
        self.undirected = undirected
        self.allow_self_loops = allow_self_loops

    def add_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        """Record one edge; direction handling happens in :meth:`build`."""
        if u < 0 or v < 0:
            raise GraphFormatError(f"negative node id in edge ({u}, {v})")
        if weight < 0 or not np.isfinite(weight):
            raise GraphFormatError(f"invalid weight {weight!r} for edge ({u}, {v})")
        self._sources.append(int(u))
        self._targets.append(int(v))
        self._weights.append(float(weight))

    def add_edges(
        self, edges: Iterable[tuple[int, int]], weights: Iterable[float] | None = None
    ) -> None:
        """Record many edges at once."""
        if weights is None:
            for u, v in edges:
                self.add_edge(u, v)
        else:
            for (u, v), w in zip(edges, weights):
                self.add_edge(u, v, w)

    def build(self, num_nodes: int | None = None) -> CSRGraph:
        """Produce the CSR graph from all recorded edges."""
        edges = np.column_stack(
            (
                np.asarray(self._sources, dtype=np.int64),
                np.asarray(self._targets, dtype=np.int64),
            )
        ) if self._sources else np.empty((0, 2), dtype=np.int64)
        return from_edges(
            edges,
            np.asarray(self._weights, dtype=np.float64),
            num_nodes=num_nodes,
            undirected=self.undirected,
            allow_self_loops=self.allow_self_loops,
        )


def from_edges(
    edges: Sequence[tuple[int, int]] | np.ndarray,
    weights: Sequence[float] | np.ndarray | None = None,
    *,
    num_nodes: int | None = None,
    undirected: bool = True,
    allow_self_loops: bool = False,
) -> CSRGraph:
    """Convert an edge list into a :class:`CSRGraph`.

    Parameters
    ----------
    edges:
        ``(m, 2)`` array-like of node-id pairs.
    weights:
        Optional per-edge weights (default 1.0 each).
    num_nodes:
        Total node count; inferred as ``max id + 1`` when omitted.
    undirected:
        Store each edge in both directions (the paper's setting).
    allow_self_loops:
        Keep self loops instead of dropping them.

    Duplicate edges are merged by **summing** weights, matching the usual
    multigraph-to-weighted-graph collapse.
    """
    edges = np.asarray(edges, dtype=np.int64)
    if edges.size == 0:
        edges = edges.reshape(0, 2)
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise GraphFormatError(f"edges must have shape (m, 2), got {edges.shape}")
    if weights is None:
        weights = np.ones(len(edges), dtype=np.float64)
    else:
        weights = np.asarray(weights, dtype=np.float64)
        if len(weights) != len(edges):
            raise GraphFormatError(
                f"{len(weights)} weights for {len(edges)} edges"
            )
    if len(edges) and edges.min() < 0:
        raise GraphFormatError("negative node id in edge list")
    if np.any(weights < 0) or not np.all(np.isfinite(weights)):
        raise GraphFormatError("edge weights must be finite and non-negative")

    if num_nodes is None:
        num_nodes = int(edges.max()) + 1 if len(edges) else 0
    elif len(edges) and int(edges.max()) >= num_nodes:
        raise GraphFormatError(
            f"node id {int(edges.max())} out of range for num_nodes={num_nodes}"
        )

    if not allow_self_loops and len(edges):
        keep = edges[:, 0] != edges[:, 1]
        edges, weights = edges[keep], weights[keep]

    if undirected and len(edges):
        edges = np.concatenate((edges, edges[:, ::-1]))
        weights = np.concatenate((weights, weights))

    if len(edges) == 0:
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        return CSRGraph(indptr, np.empty(0, dtype=np.int64), np.empty(0))

    # Sort by (source, target) then merge duplicates by summing weights.
    order = np.lexsort((edges[:, 1], edges[:, 0]))
    edges, weights = edges[order], weights[order]
    is_new = np.empty(len(edges), dtype=bool)
    is_new[0] = True
    is_new[1:] = np.any(edges[1:] != edges[:-1], axis=1)
    unique_edges = edges[is_new]
    group_ids = np.cumsum(is_new) - 1
    merged_weights = np.zeros(len(unique_edges), dtype=np.float64)
    np.add.at(merged_weights, group_ids, weights)

    counts = np.bincount(unique_edges[:, 0], minlength=num_nodes)
    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return CSRGraph(indptr, unique_edges[:, 1], merged_weights)
