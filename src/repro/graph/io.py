"""Graph persistence: whitespace edge lists and compressed CSR archives.

Edge lists follow the de-facto SNAP convention used by the paper's public
datasets: one ``u v [w]`` triple per line, ``#``-prefixed comment lines
ignored.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from ..exceptions import GraphFormatError
from .builder import from_edges
from .csr import CSRGraph


def load_edge_list(
    path: str | os.PathLike,
    *,
    undirected: bool = True,
    num_nodes: int | None = None,
) -> CSRGraph:
    """Read a whitespace-separated edge list file into a :class:`CSRGraph`.

    Lines may contain 2 fields (``u v``) or 3 (``u v weight``); blank lines
    and lines starting with ``#`` or ``%`` are skipped.
    """
    sources: list[int] = []
    targets: list[int] = []
    weights: list[float] = []
    weighted = False
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith(("#", "%")):
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise GraphFormatError(
                    f"{path}:{lineno}: expected 2 or 3 fields, got {len(parts)}"
                )
            try:
                sources.append(int(parts[0]))
                targets.append(int(parts[1]))
            except ValueError as exc:
                raise GraphFormatError(f"{path}:{lineno}: bad node id") from exc
            if len(parts) == 3:
                weighted = True
                try:
                    weights.append(float(parts[2]))
                except ValueError as exc:
                    raise GraphFormatError(f"{path}:{lineno}: bad weight") from exc
            else:
                weights.append(1.0)
    edges = np.column_stack(
        (np.asarray(sources, dtype=np.int64), np.asarray(targets, dtype=np.int64))
    ) if sources else np.empty((0, 2), dtype=np.int64)
    return from_edges(
        edges,
        np.asarray(weights) if weighted else None,
        num_nodes=num_nodes,
        undirected=undirected,
    )


def save_edge_list(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Write the stored directed edges of ``graph`` as an edge-list file.

    Weights are included only for weighted graphs.  Round-trips through
    :func:`load_edge_list` with ``undirected=False``.
    """
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# nodes={graph.num_nodes} edges={graph.num_edges}\n")
        for u, v, w in graph.edges():
            if graph.is_unit_weight:
                handle.write(f"{u} {v}\n")
            else:
                handle.write(f"{u} {v} {w:.17g}\n")


def save_csr_npz(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Persist the CSR arrays as a compressed ``.npz`` archive."""
    np.savez_compressed(
        Path(path),
        indptr=graph.indptr,
        indices=graph.indices,
        weights=graph.weights,
    )


def load_csr_npz(path: str | os.PathLike) -> CSRGraph:
    """Load a graph previously stored with :func:`save_csr_npz`."""
    with np.load(Path(path)) as data:
        missing = {"indptr", "indices", "weights"} - set(data.files)
        if missing:
            raise GraphFormatError(f"{path}: missing arrays {sorted(missing)}")
        return CSRGraph(data["indptr"], data["indices"], data["weights"])
