"""Graph persistence: whitespace edge lists and compressed CSR archives.

Edge lists follow the de-facto SNAP convention used by the paper's public
datasets: one ``u v [w]`` triple per line, ``#``-prefixed comment lines
ignored.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from ..exceptions import GraphFormatError
from .builder import from_edges
from .csr import CSRGraph

if TYPE_CHECKING:
    from .sharded import ShardedCSRGraph


def load_edge_list(
    path: str | os.PathLike,
    *,
    undirected: bool = True,
    num_nodes: int | None = None,
) -> CSRGraph:
    """Read a whitespace-separated edge list file into a :class:`CSRGraph`.

    Lines may contain 2 fields (``u v``) or 3 (``u v weight``); blank lines
    and lines starting with ``#`` or ``%`` are skipped.
    """
    sources: list[int] = []
    targets: list[int] = []
    weights: list[float] = []
    weighted = False
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith(("#", "%")):
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise GraphFormatError(
                    f"{path}:{lineno}: expected 2 or 3 fields, got {len(parts)}"
                )
            try:
                sources.append(int(parts[0]))
                targets.append(int(parts[1]))
            except ValueError as exc:
                raise GraphFormatError(f"{path}:{lineno}: bad node id") from exc
            if len(parts) == 3:
                weighted = True
                try:
                    weights.append(float(parts[2]))
                except ValueError as exc:
                    raise GraphFormatError(f"{path}:{lineno}: bad weight") from exc
            else:
                weights.append(1.0)
    edges = np.column_stack(
        (np.asarray(sources, dtype=np.int64), np.asarray(targets, dtype=np.int64))
    ) if sources else np.empty((0, 2), dtype=np.int64)
    return from_edges(
        edges,
        np.asarray(weights) if weighted else None,
        num_nodes=num_nodes,
        undirected=undirected,
    )


def save_edge_list(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Write the stored directed edges of ``graph`` as an edge-list file.

    Weights are included only for weighted graphs.  Round-trips through
    :func:`load_edge_list` with ``undirected=False``.
    """
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# nodes={graph.num_nodes} edges={graph.num_edges}\n")
        for u, v, w in graph.edges():
            if graph.is_unit_weight:
                handle.write(f"{u} {v}\n")
            else:
                handle.write(f"{u} {v} {w:.17g}\n")


def save_csr_npz(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Persist the CSR arrays as a compressed ``.npz`` archive."""
    np.savez_compressed(
        Path(path),
        indptr=graph.indptr,
        indices=graph.indices,
        weights=graph.weights,
    )


def load_csr_npz(path: str | os.PathLike) -> CSRGraph:
    """Load a graph previously stored with :func:`save_csr_npz`."""
    with np.load(Path(path)) as data:
        missing = {"indptr", "indices", "weights"} - set(data.files)
        if missing:
            raise GraphFormatError(f"{path}: missing arrays {sorted(missing)}")
        return CSRGraph(data["indptr"], data["indices"], data["weights"])


def save_sharded_csr(
    graph: CSRGraph,
    path: str | os.PathLike,
    *,
    num_shards: int = 1,
    overwrite: bool = False,
) -> "ShardedCSRGraph":
    """Persist ``graph`` as an out-of-core sharded CSR layout directory.

    Thin wrapper over :func:`repro.graph.sharded.write_sharded_layout`
    with edge-balanced contiguous shards; returns the reopened (and
    size-validated) :class:`~repro.graph.ShardedCSRGraph`.  The on-disk
    footprint is :meth:`CSRGraph.storage_bytes` plus one duplicated
    8-byte ``indptr`` boundary entry per extra shard; the test suite pins
    the round-trip shard-by-shard.
    """
    from .sharded import write_sharded_layout

    return write_sharded_layout(
        graph, Path(path), num_shards=num_shards, overwrite=overwrite
    )


def load_sharded_csr(path: str | os.PathLike) -> CSRGraph:
    """Reassemble the in-memory graph from a sharded layout directory.

    Verifies every shard file's content hash before concatenating — a
    corrupt or truncated layout raises
    :class:`~repro.exceptions.ShardLayoutError`, never a numpy
    ``IndexError``.  For out-of-core access keep the layout as a
    :class:`~repro.graph.ShardedCSRGraph` (via ``ShardedCSRGraph.open``)
    instead of materialising it.
    """
    from .sharded import ShardedCSRGraph

    return ShardedCSRGraph.open(Path(path)).materialize()
