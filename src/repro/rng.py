"""Random-number-generator helpers.

Every stochastic component in :mod:`repro` accepts either a seed, an existing
:class:`numpy.random.Generator`, or ``None`` and normalises it through
:func:`ensure_rng`, so experiments are reproducible end to end.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from .constants import DEFAULT_SEED
from .exceptions import RngConfigError

RngLike = Union[None, int, np.random.Generator]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``rng``.

    ``None`` yields a generator seeded with :data:`repro.constants.DEFAULT_SEED`
    (deterministic library default), an ``int`` is used as a seed, and an
    existing generator is passed through unchanged.
    """
    if rng is None:
        return np.random.default_rng(DEFAULT_SEED)
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise RngConfigError(
        f"expected None, int, or numpy Generator, got {type(rng)!r}"
    )


def spawn_rng(rng: RngLike, index: int) -> np.random.Generator:
    """Derive an independent child generator from ``rng``.

    Used to hand each parallel walker / query its own stream without the
    streams being correlated.  The derivation is deterministic in
    ``(rng, index)``.
    """
    base = ensure_rng(rng)
    seed_seq = np.random.SeedSequence(
        entropy=int(base.integers(0, 2**63 - 1)), spawn_key=(int(index),)
    )
    return np.random.default_rng(seed_seq)
