"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import AutoregressiveModel, CSRGraph, Node2VecModel
from repro.datasets import figure5_toy_graph
from repro.graph import barabasi_albert_graph, erdos_renyi_graph


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for tests."""
    return np.random.default_rng(1234)


@pytest.fixture
def toy_graph() -> CSRGraph:
    """The paper's Figure 5 toy graph: hub 0, leaf 1, triangle 0-2-3."""
    return figure5_toy_graph()


@pytest.fixture
def triangle_graph() -> CSRGraph:
    """A single triangle."""
    return CSRGraph.from_edges([(0, 1), (1, 2), (2, 0)])


@pytest.fixture
def path_graph() -> CSRGraph:
    """Path 0 - 1 - 2 - 3."""
    return CSRGraph.from_edges([(0, 1), (1, 2), (2, 3)])


@pytest.fixture
def weighted_graph() -> CSRGraph:
    """A small weighted graph with distinct weights."""
    return CSRGraph.from_edges(
        [(0, 1), (0, 2), (1, 2), (2, 3), (1, 3)],
        weights=[1.0, 2.0, 0.5, 3.0, 1.5],
    )


@pytest.fixture(scope="session")
def medium_graph() -> CSRGraph:
    """A ~200-node power-law graph shared across statistical tests."""
    return barabasi_albert_graph(200, 4, rng=7)


@pytest.fixture(scope="session")
def sparse_graph() -> CSRGraph:
    """A sparse random graph (may contain isolated nodes)."""
    return erdos_renyi_graph(80, 0.03, rng=11)


@pytest.fixture
def nv_model() -> Node2VecModel:
    """The NV(0.25, 4) model used throughout the paper's evaluation."""
    return Node2VecModel(a=0.25, b=4.0)


@pytest.fixture
def auto_model() -> AutoregressiveModel:
    """The Auto(0.2) model."""
    return AutoregressiveModel(alpha=0.2)
