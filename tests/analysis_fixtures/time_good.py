# reprolint: module=walks/corpus.py
"""TIME001 fixture: duration measurement is legal even in deterministic
modules (monotonic clocks never leak into persisted identity), and wall
clocks are legal in functions that do not derive identity."""

import time


def timed_build(build):
    started = time.perf_counter()
    result = build()
    return result, time.perf_counter() - started


def wait_a_bit():
    deadline = time.monotonic() + 0.1
    while time.monotonic() < deadline:
        pass
