# reprolint: module=walks/parallel.py
"""MP001 fixture: module-level worker functions, all picklable."""

import multiprocessing


def _worker(chunk):
    return chunk * 2


def run_chunks(chunks):
    with multiprocessing.Pool(2) as pool:
        return pool.map(_worker, chunks)


def spawn_one(chunk):
    proc = multiprocessing.Process(target=_worker, args=(chunk,))
    proc.start()
    return proc
