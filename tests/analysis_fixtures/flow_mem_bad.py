"""FLOW-MEM fixture: degree-sized state escaping without accounting."""

import numpy as np

_TABLE_CACHE = {}


class LeakySampler:
    """Alias-style sampler that never reports its footprint."""

    def __init__(self, num_outcomes):
        self.num_outcomes = num_outcomes

    def build(self):
        probs = np.zeros(self.num_outcomes)  # degree-sized scratch
        self.probs = probs  # finding: stored on self, no accounting
        return self.probs


def build_table(num_outcomes):
    table = np.empty(num_outcomes)
    return table


def cache_table(node, num_outcomes):
    table = build_table(num_outcomes)
    _TABLE_CACHE[node] = table  # finding: returned value stored in a global
    return table
