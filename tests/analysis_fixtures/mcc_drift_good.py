# reprolint: module=sampling/alias.py
"""MCC201 twin: builder allocation matches the cost model exactly."""

import numpy as np


class AliasTable:
    """Allocates d*b_f + d*b_i, exactly what memory_bytes promises."""

    def __init__(self, weights: np.ndarray) -> None:
        n = len(weights)
        prob = np.ones(n, dtype=np.float64)
        alias = np.arange(n, dtype=np.int64)
        self._prob = prob
        self._alias = alias

    @property
    def num_outcomes(self) -> int:
        """Number of discrete outcomes."""
        return len(self._prob)

    def memory_bytes(self, int_bytes: int = 4, float_bytes: int = 4) -> int:
        """The Table 1 formula: one float + one int per outcome."""
        return self.num_outcomes * (int_bytes + float_bytes)
