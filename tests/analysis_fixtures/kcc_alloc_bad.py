# reprolint: module=walks/kernels/numpy_backend.py
"""KCC103/KCC104 fixture: degree-scaled allocation and raise in kernels.

Acts as its own reference module (linted in a run of its own).
"""

from typing import Any

import numpy as np
from numpy import typing as npt

from repro.hotpath import hot_path

KERNEL_NAMES = ("degree_buffer", "checked_pick")


@hot_path
def degree_buffer(
    xp: Any, degrees: npt.NDArray[np.int64], group: npt.NDArray[np.int64]
) -> npt.NDArray[np.float64]:
    """finding: allocates a buffer sized by a graph-degree quantity."""
    # kcc: dims=degrees:N,group:W
    scratch = xp.zeros(int(degrees.sum()), dtype=xp.float64)  # finding: KCC103
    return scratch


@hot_path
def checked_pick(
    xp: Any, sizes: npt.NDArray[np.int64], u_column: npt.NDArray[np.float64]
) -> npt.NDArray[np.int64]:
    """finding: raises instead of returning a sentinel."""
    # kcc: dims=sizes:W,u_column:W
    if bool(xp.any(sizes <= 0)):
        raise ValueError("empty segment")  # finding: KCC104
    return (u_column * sizes).astype(xp.int64)
