# reprolint: module=framework/framework.py
"""MCC203 twin: the charge precedes every scaled allocation."""

import numpy as np


def build_sampler_state(meter, graph, node):
    """Clean: charge first, allocate once the meter has accepted."""
    degree = graph.degree(node)
    meter.charge(degree * 8, "sampler-state")
    return np.zeros(degree, dtype=np.float64)


def rebuild_on_branch(meter, graph, node, bounded):
    """Clean: both branches allocate after the shared charge."""
    degree = graph.degree(node)
    meter.charge(degree * 8, "sampler-state")
    if bounded:
        return np.ones(degree, dtype=np.float64)
    return np.zeros(degree, dtype=np.float64)
