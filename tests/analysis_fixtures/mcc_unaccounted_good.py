# reprolint: module=sampling/scratch.py
"""MCC202 twin: every scaled allocation is accounted on all paths."""

import numpy as np


def materialize_weights(graph, node, cache):
    """Clean: the buffer flows straight into the byte-accounted cache."""
    degree = graph.degree(node)
    cache.put(node, np.empty(degree, dtype=np.float64))
    return cache.get(node)


def build_offsets(meter, graph):
    """Clean: the budget guard covers both branches before allocating."""
    num_nodes = graph.num_nodes
    if not meter.can_charge((num_nodes + 1) * 8):
        raise MemoryError("offsets do not fit the budget")
    meter.charge((num_nodes + 1) * 8, "offsets")
    return np.zeros(num_nodes + 1, dtype=np.int64)


def fixed_scratch():
    """Clean: constant-sized allocation, not graph-scaled."""
    return np.zeros(16, dtype=np.float64)
