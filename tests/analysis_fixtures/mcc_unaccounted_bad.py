# reprolint: module=sampling/scratch.py
"""MCC202 fixture: graph-scaled allocations with no accounting path.

Impersonates a module under the budget-governed ``sampling/`` prefix;
no path to either allocation passes a ``MemoryBudget.charge`` or a
cache admission.
"""

import numpy as np


def materialize_weights(graph, node):
    """finding: degree-sized buffer, never charged."""
    degree = graph.degree(node)
    weights = np.empty(degree, dtype=np.float64)  # finding: MCC202
    weights[:] = graph.neighbor_weights(node)
    return weights


def build_offsets(graph, partial):
    """finding: node-count buffer allocated on the uncharged branch."""
    if partial:
        return None
    num_nodes = graph.num_nodes
    return np.zeros(num_nodes + 1, dtype=np.int64)  # finding: MCC202
