"""TIME001 fixture: wall clock inside an identity-deriving function.

No ``module=`` directive — this exercises the name-based path: functions
whose names look like signature/hash/seed derivation are held to the
wall-clock ban even outside the deterministic modules.
"""

import time


def checkpoint_signature(config):
    return (tuple(sorted(config.items())), time.time())  # finding


def derive_seed(base):
    return base ^ time.time_ns()  # finding
