# reprolint: disable-file=DEF001
"""Suppression fixture: a file-wide directive silences every DEF001
finding regardless of position, but leaves other rules running."""


def first(acc=[]):
    return acc


def second(options={}):
    return options


def still_raises():  # EXC001 must still fire despite the DEF001 directive
    raise ValueError("not suppressed")
