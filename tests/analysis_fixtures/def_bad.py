"""DEF001 fixture: mutable defaults, literal and constructor forms."""


def collect(walk, acc=[]):  # finding: list literal
    acc.append(walk)
    return acc


def configure(name, options={}):  # finding: dict literal
    return dict(options, name=name)


def register(node, *, seen=set()):  # finding: set constructor (kw-only)
    seen.add(node)
    return seen


def with_factory(items=list()):  # finding: list() constructor
    return items
