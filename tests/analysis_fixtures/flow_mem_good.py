"""FLOW-MEM fixture: accounted or transient degree-sized allocations."""

import numpy as np


class AccountedSampler:
    """Alias-style sampler that reports every byte it holds."""

    def __init__(self, num_outcomes):
        self.num_outcomes = num_outcomes

    def build(self):
        probs = np.zeros(self.num_outcomes)
        self.probs = probs  # fine: memory_bytes() covers it
        return self.probs

    def memory_bytes(self):
        return float(self.probs.nbytes)


def transient_sum(num_outcomes):
    scratch = np.zeros(num_outcomes)  # fine: dies with the frame
    return float(scratch.sum())
