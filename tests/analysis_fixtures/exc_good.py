"""EXC001 fixture: hierarchy-respecting raises, concrete catches."""

from repro.exceptions import OptimizerError, ReproError, SamplerConfigError


def load(path):
    try:
        return open(path).read()
    except OSError:
        return None


def validate(budget):
    if budget <= 0:
        raise SamplerConfigError("budget must be positive")


def solve(problem):
    try:
        return problem.solve()
    except ReproError:
        raise OptimizerError("optimisation failed") from None
