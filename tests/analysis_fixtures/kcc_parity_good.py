# reprolint: module=walks/kernels/loopy_backend.py
"""KCC101 fixture: a fully conformant loop-form backend (no findings).

Linted together with ``kcc_parity_ref.py`` (the contract source).
"""

import numpy as np
from numpy import typing as npt

KERNEL_NAMES = ("scale_mass", "pick_columns", "mask_accept")


def scale_mass(
    values: npt.NDArray[np.float64], factors: npt.NDArray[np.float64]
) -> npt.NDArray[np.float64]:
    """Loop form of the reference ``scale_mass``."""
    out = np.empty(values.shape[0], np.float64)
    for i in range(values.shape[0]):
        out[i] = values[i] * factors[i]
    return out


def pick_columns(
    sizes: npt.NDArray[np.int64], u_column: npt.NDArray[np.float64]
) -> npt.NDArray[np.int64]:
    """Loop form of the reference ``pick_columns``."""
    out = np.empty(sizes.shape[0], np.int64)
    for i in range(sizes.shape[0]):
        column = int(u_column[i] * sizes[i])
        if column > sizes[i] - 1:
            column = sizes[i] - 1
        out[i] = column
    return out


def mask_accept(
    ratios: npt.NDArray[np.float64], uniforms: npt.NDArray[np.float64]
) -> npt.NDArray[np.bool_]:
    """Loop form of the reference ``mask_accept``."""
    out = np.empty(ratios.shape[0], np.bool_)
    for i in range(ratios.shape[0]):
        acceptance = ratios[i]
        if acceptance > 1.0:
            acceptance = 1.0
        out[i] = uniforms[i] <= acceptance
    return out
