"""FLOW-RNG fixture: seed-derived, threaded generators — all allowed."""

from multiprocessing import Pool

from numpy.random import default_rng

from repro.hotpath import hot_path


def derive_seeds(rng, n):
    return [int(s) for s in rng.integers(0, 2**31, size=n)]


def run_chunks(chunks, rng):
    seeds = derive_seeds(rng, len(chunks))
    with Pool(2) as pool:
        # Only derived seeds cross the boundary; workers rebuild.
        return pool.starmap(work_chunk, zip(seeds, chunks))


def work_chunk(seed, chunk):
    rng = default_rng(seed)
    return rng.random(len(chunk))


@hot_path
def kernel(sub, gen):
    return gen.random(sub)
