# reprolint: module=graph/sharded.py
"""MCC205 twin: shard byte arithmetic agrees with the contract."""

import numpy as np


def shard_nbytes(start: int, stop: int, num_edges: int) -> int:
    """Clean: int64 indptr slice (n_s+1) + int64 indices + float64 weights."""
    return (stop - start + 1) * 8 + num_edges * 16


class ShardResidencyManager:
    """Residency bookkeeping pinned to manifest counts and real nbytes."""

    def _load(self, path, shard_file):
        """Clean: the map is shaped by the manifest element count."""
        return np.memmap(
            path,
            dtype=np.int64,
            mode="r",
            shape=(shard_file.count,),
        )

    def _admit(self, shard) -> None:
        """Clean: residency charged with the mapped arrays' real bytes."""
        self._resident_bytes += shard.nbytes

    def _record(self, name: str, array) -> dict:
        """Clean: manifest bytes recorded straight from the array."""
        return {
            "name": name,
            "bytes": int(array.nbytes),
        }
