# reprolint: module=walks/batch.py
"""KCC105 fixture: every class of uniform-draw accounting drift.

Linted together with ``kcc_parity_ref.py`` — the contract gives
``pick_columns`` one uniform parameter and ``mask_accept`` one.
"""

from repro.walks.dsan import kernel_scope


def over_drawing_driver(kb, gen, sizes, ratios):
    """Scope draws more than the kernel consumes."""
    with kernel_scope("pick_columns"):
        u_column = gen.random(sizes.shape[0])
        u_spare = gen.random(sizes.shape[0])  # finding: over-draw (2 vs 1)
    picks = kb.pick_columns(sizes, u_column)
    return picks, u_spare


def under_drawing_driver(kb, gen, sizes, ratios, u_stale):
    """Scope draws nothing although the kernel consumes one array."""
    with kernel_scope("mask_accept"):  # finding: under-draw (0 vs 1)
        kept = kb.mask_accept(ratios, u_stale)
    return kept


def unscoped_uniform_driver(kb, gen, sizes, ratios):
    """Uniforms drawn outside the consuming kernel's scope."""
    u_accept = gen.random(ratios.shape[0])
    with kernel_scope("mask_accept"):
        unused = gen.random(ratios.shape[0])
    # finding: u_accept was drawn outside kernel_scope('mask_accept')
    kept = kb.mask_accept(ratios, u_accept)
    return kept, unused


def stale_scope_driver(kb, gen, ratios):
    """Pseudo-scope that attributes nothing."""
    with kernel_scope("warmup"):  # finding: no draws under pseudo-scope
        threshold = ratios.sum()
    return threshold
