"""HOT002 fixture: kernels dispatch through ``xp``; annotations and
non-kernel helpers may still name numpy."""

from typing import Any

import numpy as np

from repro.hotpath import hot_path


@hot_path
def pick(xp: Any, weights: np.ndarray, uniforms: np.ndarray) -> np.ndarray:
    cumulative = xp.cumsum(weights)
    return xp.searchsorted(cumulative, uniforms)


@hot_path
def mask(xp: Any, ratios: np.ndarray, uniforms: np.ndarray) -> np.ndarray:
    kept: np.ndarray = uniforms <= xp.minimum(1.0, ratios)
    return kept


def driver(weights, uniforms):
    # Not @hot_path: host-numpy access is the driver's business.
    return pick(np, np.asarray(weights), np.asarray(uniforms))
