# reprolint: module=walks/scratch_cache.py
"""MCC204 fixture: entry sizing drift and accounting-internal poking.

``entry_bytes`` overrides that guess at the payload size instead of
reading ``nbytes``, plus an outsider resetting the cache's private
accounting fields.
"""


class GuessingCache:
    """finding: element count is not a byte count."""

    @staticmethod
    def entry_bytes(value) -> int:
        """finding: len(value) * 8 drifts for any non-8-byte payload."""
        return len(value) * 8  # finding: MCC204


class FlatRateCache:
    """finding: constant per-entry charge."""

    @staticmethod
    def entry_bytes(value) -> int:
        """finding: a flat rate ignores the payload entirely."""
        return 1024  # finding: MCC204


def reset_accounting(cache) -> None:
    """finding: cache internals mutated from outside walks/cache.py."""
    cache._used = 0  # finding: MCC204
    cache._peak = 0  # finding: MCC204
