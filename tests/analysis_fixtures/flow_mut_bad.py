"""FLOW-MUT fixture: shared-state writes inside worker-reachable code."""

import os
from multiprocessing import Pool

_PROGRESS = {}
_SEEN = []
_TOTAL = 0


def work_chunk(chunk):
    global _TOTAL
    _TOTAL += len(chunk)  # finding: module-global assignment in a worker
    _PROGRESS[chunk[0]] = True  # finding: item store on module-level dict
    os.environ.update(REPRO_CHUNK="1")  # finding: environment mutation
    return summarize(chunk)


def summarize(chunk):
    _SEEN.append(chunk[0])  # finding: mutating call, transitively reachable
    return len(chunk)


def run(chunks):
    with Pool(2) as pool:
        return pool.map(work_chunk, chunks)
