# reprolint: module=remote/fetcher.py
"""TIME002 fixture: ambient clock use where injection is mandatory.

The ``module=`` directive places this file under ``remote/``, where any
ambient ``time.*`` call is a finding; the retry helper below would be a
finding in *any* module because it times its loop off the real clock.
"""

import time


def fetch_with_backoff(transport, node):
    for attempt in range(3):
        try:
            return transport.fetch(node)
        except Exception:
            time.sleep(0.1 * 2**attempt)  # finding: ambient sleep
    raise RuntimeError("unreachable in fixture")


def elapsed_budget(started):
    return time.monotonic() - started  # finding: ambient read in remote/
