# reprolint: module=framework/framework.py
"""MCC203 fixture: allocation precedes the budget charge.

Impersonates the framework orchestration module (scanned for charge
ordering): the builder commits the degree-scaled buffer before the
meter has had a chance to refuse it.
"""

import numpy as np


def build_sampler_state(meter, graph, node):
    """finding: allocate-then-charge defeats the OOM gate."""
    degree = graph.degree(node)
    state = np.zeros(degree, dtype=np.float64)  # finding: MCC203
    meter.charge(degree * 8, "sampler-state")
    return state


def rebuild_on_branch(meter, graph, node, bounded):
    """finding: one branch allocates before the charge."""
    degree = graph.degree(node)
    if bounded:
        state = np.ones(degree, dtype=np.float64)  # finding: MCC203
    else:
        meter.charge(degree * 8, "sampler-state")
        state = np.zeros(degree, dtype=np.float64)
    return state
