"""FLOW-RNG fixture: every RNG-provenance leak the pass rejects."""

from multiprocessing import Pool

from numpy.random import default_rng

from repro.hotpath import hot_path

_GLOBAL_RNG = default_rng(7)  # finding: ambient module-level generator


def fresh_entropy():
    return default_rng()  # finding: unseeded construction


def ambient_draw(n):
    return _GLOBAL_RNG.random(n)  # finding: draw on module-level generator


def sample_from(gen, n):
    return gen.integers(0, n, size=n)


def indirect_ambient(n):
    # finding: ambient generator flows into a function that samples from it
    return sample_from(_GLOBAL_RNG, n)


def ship_live_state(chunks, seed):
    rng = default_rng(seed)
    with Pool(2) as pool:
        # finding: live generator state crosses the process boundary
        return pool.map(work_chunk, [(rng, c) for c in chunks])


def work_chunk(payload):
    rng, chunk = payload
    return rng.random(len(chunk))


@hot_path
def kernel(sub, gen):
    extra = default_rng(123)  # finding: generator constructed in a kernel
    return gen.random(sub) + extra.random(sub)
