"""DOC001 fixture: missing docstrings on public API surface."""


def undocumented_function(x):  # finding
    return x + 1


class UndocumentedClass:  # finding (class itself)
    def undocumented_method(self):  # finding (base-less class)
        return None


class Documented:
    """Documented class whose own method still needs a docstring."""

    def bare_method(self):  # finding
        return None
