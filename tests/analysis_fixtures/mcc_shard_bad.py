# reprolint: module=graph/sharded.py
"""MCC205 fixture: every class of shard byte-arithmetic drift.

Impersonates the out-of-core backend: the layout formula, the memmap
shape, the residency update, and the manifest byte record each drift
from the ``resident_shard`` contract in their own way.
"""

import numpy as np


def shard_nbytes(start: int, stop: int, num_edges: int) -> int:
    """finding: 12 bytes/edge and no indptr sentinel vs the contract."""
    return (stop - start) * 8 + num_edges * 12  # finding: MCC205


class ShardResidencyManager:
    """Residency bookkeeping with planted arithmetic drift."""

    def _load(self, path, spec):
        """finding: memmap shaped by a recomputed guess, not the manifest."""
        return np.memmap(
            path,
            dtype=np.int64,
            mode="r",
            shape=(spec.num_edges,),  # finding: MCC205
        )

    def _admit(self, shard, spec) -> None:
        """finding: residency bytes from an estimate, not real nbytes."""
        self._resident_bytes += spec.estimated_bytes  # finding: MCC205

    def _record(self, name: str, num_edges: int) -> dict:
        """finding: manifest bytes recomputed instead of recorded."""
        return {
            "name": name,
            "bytes": num_edges * 8,  # finding: MCC205
        }
