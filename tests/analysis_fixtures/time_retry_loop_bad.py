# reprolint: module=walks/fetchers.py
"""TIME002 fixture: a retry loop timed off the ambient clock, in a
module with no blanket clock-injection requirement.  The function name
matches the retry/backoff pattern, so the loop body is held to the
injection standard."""

import time


def retry_until_ready(probe, timeout):
    deadline = time.monotonic() + timeout  # legal: outside any loop
    while not probe():
        if time.monotonic() > deadline:  # finding: ambient read in loop
            return False
        time.sleep(0.01)  # finding: ambient sleep in loop
    return True
