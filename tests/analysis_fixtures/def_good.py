"""DEF001 fixture: None defaults materialised inside the body."""


def collect(walk, acc=None):
    acc = [] if acc is None else acc
    acc.append(walk)
    return acc


def configure(name, options=None, retries=3, label=""):
    options = {} if options is None else options
    return dict(options, name=name)


def register(node, *, seen=None):
    seen = set() if seen is None else seen
    seen.add(node)
    return seen
