# reprolint: module=walks/corpus.py
"""TIME001 fixture: wall-clock reads in a deterministic module.

The ``module=`` directive makes this file impersonate ``walks/corpus.py``,
one of the modules where *any* wall-clock read is a finding.
"""

import time
from datetime import datetime


def corpus_header():
    return {"created": time.time()}  # finding: wall clock in det. module


def corpus_stamp():
    return datetime.now().isoformat()  # finding: wall clock in det. module
