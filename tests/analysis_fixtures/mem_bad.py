# reprolint: module=sampling/fixture_tables.py
"""MEM001 fixture: degree-sized allocations with no accounting in scope."""

import numpy as np


def build_table(degree):
    probs = np.empty(degree)  # finding: degree-sized, unaccounted
    alias = np.zeros(degree, dtype=np.int64)  # finding
    return probs, alias


class UnaccountedTable:
    """Has no memory_bytes method, so its allocations are findings."""

    def __init__(self, degrees):
        self.buffers = np.ones(degrees.sum())  # 'degrees' in size expr
