# reprolint: module=sampling/alias.py
"""MCC201 fixture: itemsize drift (float32 table under a b_f model).

The builder allocates the probability table at 4 bytes per element
while the contract's canonical ``b_f`` width is 8 — MCC201 reports the
non-canonical dtype at the allocation site.
"""

import numpy as np


class AliasTable:
    """finding: float32 probability table drifts from the b_f itemsize."""

    def __init__(self, weights: np.ndarray) -> None:
        n = len(weights)
        prob = np.ones(n, dtype=np.float32)
        alias = np.arange(n, dtype=np.int64)
        self._prob = prob
        self._alias = alias

    @property
    def num_outcomes(self) -> int:
        """Number of discrete outcomes."""
        return len(self._prob)

    def memory_bytes(self, int_bytes: int = 4, float_bytes: int = 4) -> int:
        """The Table 1 formula: one float + one int per outcome."""
        return self.num_outcomes * (int_bytes + float_bytes)
