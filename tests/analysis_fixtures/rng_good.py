"""RNG001 fixture: explicit-Generator randomness, all allowed."""

import numpy as np
from numpy.random import PCG64, Generator, SeedSequence, default_rng


def shuffled_nodes(nodes, rng):
    rng.shuffle(nodes)
    return nodes


def noisy_weights(n, seed):
    rng = default_rng(seed)
    return rng.random(n)


def spawn(seed, n):
    return [Generator(PCG64(s)) for s in SeedSequence(seed).spawn(n)]


def deterministic_array(n):
    return np.zeros(n)
