# reprolint: module=sampling/fixture_tables.py
"""MEM001 fixture: the same allocations, properly accounted."""

import numpy as np


class AccountedTable:
    """memory_bytes() makes every allocation in the class accounted."""

    def __init__(self, degree):
        self.probs = np.empty(degree)
        self.alias = np.zeros(degree, dtype=np.int64)

    def memory_bytes(self):
        return self.probs.nbytes + self.alias.nbytes


def build_charged(degree, meter):
    buf = np.empty(degree)
    meter.charge(buf.nbytes)
    return buf


def fixed_size_scratch(n_buckets):
    # Size does not scale with degree: not this rule's concern.
    return np.zeros(n_buckets)
