"""HOT001 fixture: per-element Python iteration inside @hot_path."""

import numpy as np

from repro.hotpath import hot_path


@hot_path
def step_all(positions, neighbors):
    out = np.empty_like(positions)
    for i, pos in enumerate(positions):  # finding: for loop
        out[i] = neighbors[pos][0]
    return out


@hot_path
def drain(queue):
    while queue:  # finding: while loop
        queue.pop()


@hot_path
def gather(values):
    return np.array([v + 1 for v in values])  # finding: comprehension
