# reprolint: module=walks/kernels/broken_backend.py
"""KCC101 fixture: every class of backend parity drift.

Linted together with ``kcc_parity_ref.py`` (the contract source).
"""

import numpy as np
from numpy import typing as npt

KERNEL_NAMES = ("scale_mass", "mask_accept", "bogus_kernel")
# finding: KERNEL_NAMES drift (missing pick_columns, unknown bogus_kernel)
# finding: missing kernel pick_columns


def scale_mass(
    factors: npt.NDArray[np.float64], values: npt.NDArray[np.float64]
) -> npt.NDArray[np.float64]:
    """finding: parameter drift — values/factors swapped vs the contract."""
    return values * factors


def mask_accept(
    ratios: np.ndarray,  # finding: annotation drift (contract: NDArray[float64])
    uniforms: npt.NDArray[np.float64],
) -> np.ndarray:  # finding: return annotation drift
    """Body is contract-clean; only the signature drifts."""
    acceptance = np.minimum(1.0, ratios)
    mask = uniforms <= acceptance
    return mask
