# reprolint: module=walks/kernels/numpy_backend.py
"""KCC102 fixture: the explicit-conversion twins of ``kcc_dtype_bad``.

Same shapes of computation, every cast spelled out — zero findings.
"""

from typing import Any

import numpy as np
from numpy import typing as npt

from repro.hotpath import hot_path

KERNEL_NAMES = ("rounding_store", "int_fancy_index", "widened_return", "aligned_dims")


@hot_path
def rounding_store(
    xp: Any, counts: npt.NDArray[np.int64], weights: npt.NDArray[np.float64]
) -> npt.NDArray[np.int64]:
    """Explicit ``astype`` makes the narrowing store intentional."""
    # kcc: dims=counts:W,weights:W
    out = xp.zeros(counts.shape[0], dtype=xp.int64)
    out[:] = (counts * weights).astype(xp.int64)
    return out


@hot_path
def int_fancy_index(
    xp: Any, values: npt.NDArray[np.float64], u_pick: npt.NDArray[np.float64]
) -> npt.NDArray[np.float64]:
    """Index array is truncated to int64 before the gather."""
    # kcc: dims=values:T,u_pick:W
    positions = (u_pick * values.shape[0]).astype(xp.int64)
    return values[positions]


@hot_path
def widened_return(
    xp: Any, sizes: npt.NDArray[np.int64], uniforms: npt.NDArray[np.float64]
) -> npt.NDArray[np.float64]:
    """Return annotation matches the promoted float64 result."""
    # kcc: dims=sizes:W,uniforms:W
    return uniforms * sizes


@hot_path
def aligned_dims(
    xp: Any,
    totals: npt.NDArray[np.float64],
    group: npt.NDArray[np.int64],
    masses: npt.NDArray[np.float64],
) -> npt.NDArray[np.float64]:
    """Per-group totals gathered to walker alignment before combining."""
    # kcc: dims=totals:G,group:W,masses:W
    return masses / totals[group]
