# reprolint: module=sampling/alias.py
"""MCC201 fixture: builder allocation drifted from the cost model.

Impersonates ``sampling/alias.py`` so the ``alias_table`` structure
contract extracts from this file: the builder persists an extra scratch
float array per outcome (``2*d*b_f + d*b_i``) that the model formula
(``d*b_f + d*b_i``) knows nothing about.
"""

import numpy as np


class AliasTable:
    """finding: allocation 2*d*b_f + d*b_i vs model d*b_f + d*b_i."""

    def __init__(self, weights: np.ndarray) -> None:
        n = len(weights)
        prob = np.ones(n, dtype=np.float64)
        alias = np.arange(n, dtype=np.int64)
        # The planted drift: a persistent per-outcome scratch array the
        # memory_bytes model below does not price.
        self._scratch = np.zeros(n, dtype=np.float64)
        self._prob = prob
        self._alias = alias

    @property
    def num_outcomes(self) -> int:
        """Number of discrete outcomes."""
        return len(self._prob)

    def memory_bytes(self, int_bytes: int = 4, float_bytes: int = 4) -> int:
        """The Table 1 formula: one float + one int per outcome."""
        return self.num_outcomes * (int_bytes + float_bytes)
