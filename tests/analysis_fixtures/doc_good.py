"""DOC001 fixture: documented surface plus the two exemptions —
private names and interface overrides (inherited docstrings)."""


def documented(x):
    """Documented public function."""
    return x + 1


def _private(x):  # private: exempt
    return x - 1


class Base:
    """Documented interface."""

    def sample(self):
        """Documented once, on the interface."""
        raise NotImplementedError


class Impl(Base):
    """Override methods inherit the Base docstring (pydoc shows it)."""

    def sample(self):  # override of documented interface: exempt
        return 42
