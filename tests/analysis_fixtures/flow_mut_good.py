"""FLOW-MUT fixture: workers mutate only their own frame, then return."""

from multiprocessing import Pool


def work_chunk(chunk):
    seen = []
    seen.append(chunk[0])  # fine: local container
    return len(chunk), seen


def run(chunks):
    totals = {}
    with Pool(2) as pool:
        for index, (count, _) in enumerate(pool.map(work_chunk, chunks)):
            totals[index] = count  # fine: parent-side aggregation
    return totals
