# reprolint: module=walks/kernels/numpy_backend.py
"""KCC fixture reference backend: a three-kernel contract.

Impersonates the numpy reference module so the kcc fixtures exercise
contract extraction and cross-backend parity without depending on the
real kernel set.  Linted together with the ``kcc_parity_*``/
``kcc_uniform_*`` fixtures, never alone.
"""

from typing import Any

import numpy as np
from numpy import typing as npt

from repro.hotpath import hot_path

KERNEL_NAMES = ("scale_mass", "pick_columns", "mask_accept")


@hot_path
def scale_mass(
    xp: Any, values: npt.NDArray[np.float64], factors: npt.NDArray[np.float64]
) -> npt.NDArray[np.float64]:
    """Reference kernel: elementwise mass rescale."""
    # kcc: dims=values:W,factors:W
    return values * factors


@hot_path
def pick_columns(
    xp: Any, sizes: npt.NDArray[np.int64], u_column: npt.NDArray[np.float64]
) -> npt.NDArray[np.int64]:
    """Reference kernel: one uniform-driven column pick per walker."""
    # kcc: dims=sizes:W,u_column:W
    columns = (u_column * sizes).astype(xp.int64)
    return xp.minimum(columns, sizes - 1)


@hot_path
def mask_accept(
    xp: Any, ratios: npt.NDArray[np.float64], uniforms: npt.NDArray[np.float64]
) -> npt.NDArray[np.bool_]:
    """Reference kernel: Metropolis-style acceptance mask."""
    # kcc: dims=ratios:W,uniforms:W
    acceptance = xp.minimum(1.0, ratios)
    mask: npt.NDArray[np.bool_] = uniforms <= acceptance
    return mask
