"""HOT001 fixture: whole-array operations only; loops outside @hot_path
are not this rule's business."""

import numpy as np

from repro.hotpath import hot_path


@hot_path
def step_all(positions, targets, offsets):
    return targets[offsets[positions]]


def warm_up(tables):
    # Not @hot_path: per-element iteration is fine here.
    for table in tables:
        table.build()


@hot_path
def mix(a, b, mask):
    return np.where(mask, a, b)
