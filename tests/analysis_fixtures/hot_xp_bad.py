"""HOT002 fixture: @hot_path kernels pinned to host numpy."""

import numpy as np

from repro.hotpath import hot_path


@hot_path
def pick(xp, weights, uniforms):
    cumulative = xp.cumsum(weights)
    return np.searchsorted(cumulative, uniforms)  # finding: bare np.


@hot_path
def mask(ratios, uniforms):  # finding: first parameter is not `xp`
    return uniforms <= ratios


@hot_path
def advance(xp, current, step):
    out = np.empty_like(current)  # finding: bare np.
    out[:] = xp.where(step >= 0, step, current)
    return out
