# reprolint: module=walks/parallel.py
"""MP001 fixture: unpicklable callables crossing the pool boundary."""

import multiprocessing


def run_chunks(chunks):
    with multiprocessing.Pool(2) as pool:
        return pool.map(lambda c: c * 2, chunks)  # finding: lambda


def run_supervised(chunks):
    def worker(chunk):  # locally defined -> closure, unpicklable
        return chunk * 2

    with multiprocessing.Pool(2) as pool:
        return [pool.apply_async(worker, (c,)) for c in chunks]  # finding


def spawn_one(chunk):
    def handler(c):
        return c

    proc = multiprocessing.Process(target=handler, args=(chunk,))  # finding
    proc.start()
    return proc
