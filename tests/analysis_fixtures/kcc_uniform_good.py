# reprolint: module=walks/batch.py
"""KCC105 fixture: correctly accounted uniform draws (no findings).

Linted together with ``kcc_parity_ref.py`` (the contract source).
"""

from repro.walks.dsan import kernel_scope


def scoped_driver(kb, gen, sizes, ratios):
    """Each scope pre-draws exactly the kernel's uniform arity."""
    with kernel_scope("pick_columns"):
        u_column = gen.random(sizes.shape[0])
    picks = kb.pick_columns(sizes, u_column)
    with kernel_scope("mask_accept"):
        u_accept = gen.random(ratios.shape[0])
    kept = kb.mask_accept(ratios, u_accept)
    return picks, kept


def pseudo_scope_driver(kb, gen, walkers):
    """A non-kernel attribution scope containing real driver draws."""
    with kernel_scope("walker_streams"):
        seeds = gen.integers(0, 2**63, size=walkers)
    return seeds
