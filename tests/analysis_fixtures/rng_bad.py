"""RNG001 fixture: every ambient-randomness pattern the rule rejects."""

import random  # noqa  (finding 1: stdlib random import)

import numpy as np


def shuffled_nodes(nodes):
    random.shuffle(nodes)  # finding: stdlib random call
    return nodes


def noisy_weights(n):
    return np.random.rand(n)  # finding: numpy hidden global stream


def pick_start():
    return random.randint(0, 10)  # finding: stdlib random call
