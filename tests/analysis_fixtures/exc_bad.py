"""EXC001 fixture: bare except and builtin raises."""


def load(path):
    try:
        return open(path).read()
    except:  # noqa  (finding: bare except)
        return None


def validate(budget):
    if budget <= 0:
        raise ValueError("budget must be positive")  # finding


def lookup(table, key):
    if key not in table:
        raise KeyError(key)  # finding
    return table[key]
