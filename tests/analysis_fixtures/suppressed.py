"""Suppression fixture: each DEF001 violation is silenced a different way.

Linted with DEF001 only, this file must produce exactly one finding —
the deliberately unsuppressed ``leak`` function at the bottom.
"""


def same_line(acc=[]):  # reprolint: disable=DEF001
    return acc


# reprolint: disable=DEF001
def next_line(acc=[]):
    return acc


def multi_rule(acc=[]):  # reprolint: disable=DEF001,EXC001
    return acc


def leak(acc=[]):  # the one finding this file should produce
    return acc
