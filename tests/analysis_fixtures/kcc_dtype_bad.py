# reprolint: module=walks/kernels/numpy_backend.py
"""KCC102 fixture: dtype/shape violations abstract interpretation catches.

Acts as its own reference module (linted in a run of its own) so the
contract dtypes/dims come from these annotations.
"""

from typing import Any

import numpy as np
from numpy import typing as npt

from repro.hotpath import hot_path

KERNEL_NAMES = ("widening_store", "float_fancy_index", "narrowing_return", "mixed_dims")


@hot_path
def widening_store(
    xp: Any, counts: npt.NDArray[np.int64], weights: npt.NDArray[np.float64]
) -> npt.NDArray[np.int64]:
    """finding: float64 values silently stored into an int64 buffer."""
    # kcc: dims=counts:W,weights:W
    out = xp.zeros(counts.shape[0], dtype=xp.int64)
    out[:] = counts * weights  # finding: implicit-cast narrowing store
    return out


@hot_path
def float_fancy_index(
    xp: Any, values: npt.NDArray[np.float64], u_pick: npt.NDArray[np.float64]
) -> npt.NDArray[np.float64]:
    """finding: fancy indexing with a float-typed array."""
    # kcc: dims=values:T,u_pick:W
    positions = u_pick * values.shape[0]
    return values[positions]  # finding: float-index (missing astype(int64))


@hot_path
def narrowing_return(
    xp: Any, sizes: npt.NDArray[np.int64], uniforms: npt.NDArray[np.float64]
) -> npt.NDArray[np.int64]:
    """finding: returns float64 against an int64 return annotation."""
    # kcc: dims=sizes:W,uniforms:W
    return uniforms * sizes  # finding: implicit-cast return mismatch


@hot_path
def mixed_dims(
    xp: Any, totals: npt.NDArray[np.float64], masses: npt.NDArray[np.float64]
) -> npt.NDArray[np.float64]:
    """finding: elementwise combination of per-group and per-walker arrays."""
    # kcc: dims=totals:G,masses:W
    return masses / totals  # finding: shape-mismatch (W vs G)
