"""MEM002 fixture: the same mappings, constructed under accounting."""

import numpy as np


class TinyResidencyManager:
    """resident_bytes() marks the whole class as a residency scope."""

    def __init__(self, budget_bytes):
        self.budget_bytes = budget_bytes
        self._resident = {}
        self._bytes = 0

    def resident_bytes(self):
        return self._bytes

    def pin(self, path, count):
        mapped = np.memmap(path, dtype=np.int64, mode="r", shape=(count,))
        self._bytes += mapped.nbytes
        self._resident[path] = mapped
        return mapped


def map_charged(path, count, budget):
    # Charging against a budget in the same function is accounted too.
    mapped = np.memmap(path, dtype=np.int64, mode="r", shape=(count,))
    budget.charge(mapped.nbytes)
    return mapped


def read_eagerly(path, count):
    # An eager read is a plain allocation, not a mapping: MEM002 stays
    # quiet (MEM001 owns degree-sized allocation accounting).
    return np.fromfile(path, dtype=np.int64, count=count)
