# reprolint: module=remote/fetcher.py
"""TIME002 fixture: the compliant version — time flows through an
injected clock object, so a virtual clock can drive the retry loop
deterministically in tests."""


def fetch_with_backoff(transport, node, clock, policy):
    for attempt in range(policy.max_attempts):
        try:
            return transport.fetch(node)
        except Exception:
            clock.sleep(policy.delay(node, attempt))
    raise RuntimeError("unreachable in fixture")


def elapsed_budget(started, clock):
    return clock.monotonic() - started
