"""MEM002 fixture: memory maps constructed outside any residency scope."""

import numpy as np
from numpy import memmap


def load_everything(path, count):
    # finding: unaccounted file-backed allocation in free code
    return np.memmap(path, dtype=np.int64, mode="r", shape=(count,))


def load_bare(path, count):
    # finding: the bare imported name is the same escape hatch
    return memmap(path, dtype=np.float64, mode="r", shape=(count,))


class UnmanagedShardCache:
    """No resident_bytes surface, so its mappings are findings."""

    def __init__(self):
        self.shards = {}

    def pin(self, path, count):
        self.shards[path] = np.memmap(  # finding
            path, dtype=np.int64, mode="r", shape=(count,)
        )
        return self.shards[path]
