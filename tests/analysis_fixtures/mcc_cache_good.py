# reprolint: module=walks/scratch_cache.py
"""MCC204 twin: payload-derived sizes, accounting via the public API."""


class PayloadCache:
    """Clean: charges exactly the stored payload's bytes."""

    @staticmethod
    def entry_bytes(value) -> int:
        """The real ndarray payload bytes."""
        return int(value.nbytes)


class WrappedCache:
    """Clean: a wrapper payload still sizes through nbytes."""

    @staticmethod
    def entry_bytes(value) -> int:
        """Sum of the wrapped arrays' real bytes."""
        return int(value.weights.nbytes + value.indices.nbytes)


def reset_accounting(cache) -> None:
    """Clean: eviction goes through the cache's own API."""
    cache.clear()
