"""Tests for the memory-cost contract checker (``repro.analysis.mcc``).

Three layers, mirroring the pass split:

* **contract extraction** — the real ``src/repro`` tree yields the
  seven registered structures, each with its allocation polynomial
  matching the analytical cost-model formula, serialised into the
  committed ``memory-contracts.json``;
* **rules** — each planted fixture fires (model drift, itemsize drift,
  unaccounted scaled allocation, allocate-before-charge, guessed cache
  entry sizes, shard arithmetic drift) and each good twin stays silent;
* **integration** — the MCC pass rides the shared lint machinery:
  inline suppressions, rule selection implying the pass, MEM001/FLOW-MEM
  dedup, SARIF output, and a clean shipped tree.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.lint import Baseline, lint_main, run_lint
from repro.analysis.mcc import (
    MCC_RULE_REGISTRY,
    STRUCTURE_SPECS,
    collect_memory_contracts,
    collect_mcc_program,
    parse_poly,
    render_memory_contracts_json,
)

FIXTURES = Path(__file__).resolve().parent / "analysis_fixtures"
REPO_ROOT = Path(__file__).resolve().parents[1]

REGISTERED_STRUCTURES = {
    "alias_table",
    "rejection_sampler",
    "rejection_state",
    "alias_state",
    "naive_state",
    "edge_state_cache_entry",
    "resident_shard",
}


def mcc_findings(files, rules=None):
    """Lint fixture ``files`` with the mcc pass and no baseline."""
    result, _ = run_lint(
        [FIXTURES / name for name in files],
        rules=rules,
        baseline=Baseline(),
        root=FIXTURES,
        mcc=True,
    )
    return result.new_findings


# ----------------------------------------------------------------------
# contract extraction over the real tree
# ----------------------------------------------------------------------
class TestContractExtraction:
    @pytest.fixture(scope="class")
    def program(self):
        return collect_mcc_program()

    def test_all_registered_structures_extracted(self, program):
        assert set(program.structures) == REGISTERED_STRUCTURES
        assert {spec.name for spec in STRUCTURE_SPECS} == (
            REGISTERED_STRUCTURES
        )

    def test_every_contract_matches_its_model(self, program):
        for name, contract in program.structures.items():
            assert contract.match is True, (
                name,
                contract.problems,
            )
            assert not contract.problems, (name, contract.problems)

    def test_known_polynomials(self, program):
        rendered = {
            name: contract.to_dict()["allocation"]
            for name, contract in program.structures.items()
        }
        assert rendered["alias_table"] == "d*b_f + d*b_i"
        assert rendered["rejection_sampler"] == "2*d*b_f + d*b_i"
        assert rendered["rejection_state"] == "2*d*b_f + d*b_i"
        assert rendered["alias_state"] == (
            "d**2*b_f + d**2*b_i + d*b_f + d*b_i"
        )
        assert rendered["edge_state_cache_entry"] == "d*b_f"
        assert rendered["resident_shard"] == "8*n_s + 16*E_s + 8"

    def test_naive_state_has_no_persistent_allocation(self, program):
        contract = program.structures["naive_state"]
        assert contract.spec.expect_empty
        assert not contract.allocation
        # The model still prices the amortised scratch share.
        assert contract.model == parse_poly("d_max*b_f/N")

    def test_rejection_bounded_variant(self, program):
        contract = program.structures["rejection_state"]
        assert contract.variants["bounded"] == parse_poly("d*b_f + d*b_i")

    def test_allocation_sites_recorded(self, program):
        sites = program.structures["alias_table"].sites
        assert sites, "alias_table extracted no allocation sites"
        assert {site.kind for site in sites} == {"ndarray"}
        assert all(
            site.path.endswith("sampling/alias.py") for site in sites
        )


# ----------------------------------------------------------------------
# the committed contract JSON
# ----------------------------------------------------------------------
class TestMemoryContractsJson:
    def test_committed_contracts_json_is_fresh(self):
        committed = (REPO_ROOT / "memory-contracts.json").read_text(
            encoding="utf-8"
        )
        regenerated = render_memory_contracts_json(
            collect_memory_contracts()
        )
        assert committed == regenerated, (
            "memory-contracts.json is stale; regenerate with `repro lint "
            "--memory-contracts-json memory-contracts.json`"
        )

    def test_payload_shape(self):
        payload = json.loads(
            (REPO_ROOT / "memory-contracts.json").read_text(
                encoding="utf-8"
            )
        )
        assert payload["version"] == 1
        assert payload["itemsize"] == {"b_f": 8, "b_i": 8}
        structures = {s["name"]: s for s in payload["structures"]}
        assert set(structures) == REGISTERED_STRUCTURES
        assert all(s["match"] for s in structures.values())
        assert "bounded" in structures["rejection_state"]["variants"]
        assert structures["alias_table"]["terms"]

    def test_cli_writes_memory_contracts_json(self, tmp_path, capsys):
        target = tmp_path / "contracts.json"
        argv = [
            str(REPO_ROOT / "src" / "repro"),
            "--no-baseline",
            "--rules",
            "MCC201",
            "--memory-contracts-json",
            str(target),
        ]
        assert lint_main(argv) == 0
        payload = json.loads(target.read_text(encoding="utf-8"))
        assert {s["name"] for s in payload["structures"]} == (
            REGISTERED_STRUCTURES
        )
        assert "memory contracts written" in capsys.readouterr().out


# ----------------------------------------------------------------------
# per-rule detection on planted fixtures
# ----------------------------------------------------------------------
class TestCostModelDriftRule:
    def test_extra_persistent_allocation_is_drift(self):
        findings = mcc_findings(["mcc_drift_bad.py"], rules=["MCC201"])
        assert len(findings) == 1
        finding = findings[0]
        assert finding.rule == "MCC201"
        assert "2*d*b_f + d*b_i" in finding.message
        assert "d*b_f + d*b_i" in finding.message

    def test_matching_builder_is_clean(self):
        assert mcc_findings(["mcc_drift_good.py"], rules=["MCC201"]) == []

    def test_itemsize_drift_fires(self):
        findings = mcc_findings(["mcc_itemsize_bad.py"], rules=["MCC201"])
        assert len(findings) == 1
        assert "float32" in findings[0].message
        assert "b_f=8" in findings[0].message


class TestUnaccountedAllocationRule:
    def test_uncharged_scaled_allocations_fire(self):
        findings = mcc_findings(
            ["mcc_unaccounted_bad.py"], rules=["MCC202"]
        )
        assert len(findings) == 2
        assert all(f.rule == "MCC202" for f in findings)
        messages = "\n".join(f.message for f in findings)
        assert "`empty`" in messages
        assert "`zeros`" in messages

    def test_cache_put_and_budget_guard_are_clean(self):
        assert (
            mcc_findings(
                ["mcc_unaccounted_good.py"], rules=["MCC202", "MCC203"]
            )
            == []
        )


class TestChargeOrderRule:
    def test_allocate_before_charge_fires(self):
        findings = mcc_findings(["mcc_order_bad.py"], rules=["MCC203"])
        assert len(findings) == 2
        assert all("before the budget charge" in f.message for f in findings)

    def test_charge_first_is_clean(self):
        assert mcc_findings(["mcc_order_good.py"], rules=["MCC203"]) == []


class TestCacheEntryBytesRule:
    def test_guessed_sizes_and_external_mutation_fire(self):
        findings = mcc_findings(["mcc_cache_bad.py"], rules=["MCC204"])
        assert len(findings) == 4
        messages = "\n".join(f.message for f in findings)
        assert "GuessingCache.entry_bytes" in messages
        assert "FlatRateCache.entry_bytes" in messages
        assert "`_used` mutated" in messages
        assert "`_peak` mutated" in messages

    def test_nbytes_derived_sizes_are_clean(self):
        assert mcc_findings(["mcc_cache_good.py"], rules=["MCC204"]) == []


class TestShardArithmeticRule:
    def test_every_shard_drift_class_fires(self):
        findings = mcc_findings(["mcc_shard_bad.py"], rules=["MCC205"])
        assert len(findings) == 4
        messages = "\n".join(f.message for f in findings)
        assert "shard_nbytes computes" in messages
        assert "memmap shape element" in messages
        assert "_resident_bytes" in messages
        assert 'manifest "bytes"' in messages

    def test_conformant_shard_arithmetic_is_clean(self):
        assert mcc_findings(["mcc_shard_good.py"], rules=["MCC205"]) == []


# ----------------------------------------------------------------------
# shared-machinery integration
# ----------------------------------------------------------------------
class TestMccIntegration:
    def test_inline_suppression_works_for_mcc(self, tmp_path):
        source = (FIXTURES / "mcc_unaccounted_bad.py").read_text(
            encoding="utf-8"
        )
        source = source.replace(
            "np.empty(degree, dtype=np.float64)  # finding: MCC202",
            "np.empty(degree, dtype=np.float64)  # reprolint: disable=MCC202",
        )
        fixture = tmp_path / "mcc_unaccounted_suppressed.py"
        fixture.write_text(source, encoding="utf-8")
        result, _ = run_lint(
            [fixture],
            rules=["MCC202"],
            baseline=Baseline(),
            root=tmp_path,
            mcc=True,
        )
        assert [f.line for f in result.new_findings] == [25]

    def test_mcc_subsumes_mem001_at_same_site(self):
        # Without the mcc pass the coarse MEM001 heuristic fires; with it
        # the path-sensitive MCC202 wins and MEM001 is dropped per site.
        result, _ = run_lint(
            [FIXTURES / "mcc_unaccounted_bad.py"],
            rules=["MEM001"],
            baseline=Baseline(),
            root=FIXTURES,
        )
        mem_lines = [f.line for f in result.new_findings]
        assert mem_lines == [15]

        result, _ = run_lint(
            [FIXTURES / "mcc_unaccounted_bad.py"],
            rules=["MEM001", "MCC202"],
            baseline=Baseline(),
            root=FIXTURES,
            mcc=True,
        )
        by_rule = sorted((f.rule, f.line) for f in result.new_findings)
        assert by_rule == [("MCC202", 15), ("MCC202", 25)]

    def test_naming_a_mcc_rule_implies_the_pass(self):
        # No --mcc flag: selecting MCC ids alone must still run the pass.
        findings = mcc_findings(["mcc_order_bad.py"], rules=["MCC203"])
        assert len(findings) == 2


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
class TestMccCli:
    def test_mcc_rules_listed(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in MCC_RULE_REGISTRY:
            assert rule_id in out

    def test_check_fails_on_planted_fixture(self):
        argv = [
            str(FIXTURES / "mcc_shard_bad.py"),
            "--no-baseline",
            "--check",
            "--rules",
            "MCC205",
        ]
        assert lint_main(argv) == 1

    def test_mcc_clean_on_shipped_tree(self):
        argv = [
            str(REPO_ROOT / "src" / "repro"),
            "--no-baseline",
            "--check",
            "--rules",
            ",".join(sorted(MCC_RULE_REGISTRY)),
        ]
        assert lint_main(argv) == 0

    def test_sarif_output_format(self, capsys):
        argv = [
            str(FIXTURES / "mcc_shard_bad.py"),
            "--no-baseline",
            "--check",
            "--rules",
            "MCC205",
            "--output-format",
            "sarif",
        ]
        assert lint_main(argv) == 1
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "reprolint"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert MCC_RULE_REGISTRY.keys() <= rule_ids
        results = run["results"]
        assert len(results) == 4
        assert all(r["ruleId"] == "MCC205" for r in results)
        location = results[0]["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith(
            "mcc_shard_bad.py"
        )
        assert location["region"]["startLine"] >= 1

    def test_sarif_output_format_clean_run(self, capsys):
        argv = [
            str(FIXTURES / "mcc_shard_good.py"),
            "--no-baseline",
            "--check",
            "--rules",
            "MCC205",
            "--output-format",
            "sarif",
        ]
        assert lint_main(argv) == 0
        log = json.loads(capsys.readouterr().out)
        assert log["runs"][0]["results"] == []
