"""Tests for the step-centric kernel layer and the backend registry.

Three layers of guarantees:

* **registry** — selection precedence (argument > ``REPRO_KERNEL_BACKEND``
  > default), unknown names rejected, missing soft deps degrade to numpy
  with a :class:`~repro.exceptions.KernelBackendWarning`, third-party
  registration round-trips.
* **kernel equivalence** — the plain-Python loop implementations in
  ``numba_backend`` (the functions ``load()`` compiles) are bit-identical
  to the ``xp``-generic numpy reference kernels on randomized inputs.
  This runs without numba installed, so the no-numba CI job still checks
  the compiled backend's arithmetic specification.
* **engine integration** — the backend name lands in corpus metadata and
  the checkpoint signature (cross-backend resume is refused), dispatch
  and cache counters merge associatively across worker counts, and —
  where numba is installed — the compiled backend reproduces the numpy
  corpus and DSan fingerprints bit-for-bit.
"""

import hashlib
import importlib.util

import numpy as np
import pytest

from repro import MemoryAwareFramework, Node2VecModel, SamplerKind
from repro.analysis.dsan import DsanReport, diff_reports
from repro.exceptions import (
    CheckpointError,
    KernelBackendError,
    KernelBackendWarning,
    OptimizerError,
)
from repro.graph import powerlaw_cluster_graph
from repro.walks import parallel_walks
from repro.walks.kernels import (
    KERNEL_BACKEND_ENV,
    KernelBackend,
    available_backends,
    register_backend,
    resolve_backend,
    unregister_backend,
)
from repro.walks.kernels import numba_backend, numpy_backend

HAS_NUMBA = importlib.util.find_spec("numba") is not None


@pytest.fixture(scope="module")
def graph():
    return powerlaw_cluster_graph(60, 3, 0.4, rng=7)


@pytest.fixture(scope="module")
def model():
    return Node2VecModel(0.5, 2.0)


@pytest.fixture(scope="module")
def framework(graph, model):
    # A budget small enough to mix sampler kinds across dispatch paths.
    return MemoryAwareFramework(graph, model, budget=30_000, rng=0)


def corpus_sha(corpus) -> str:
    payload = "\n".join(" ".join(map(str, w.tolist())) for w in corpus)
    return hashlib.sha256(payload.encode()).hexdigest()


# ----------------------------------------------------------------------
# registry: selection precedence and registration
# ----------------------------------------------------------------------
class TestRegistry:
    def test_default_backend_is_numpy(self, monkeypatch):
        monkeypatch.delenv(KERNEL_BACKEND_ENV, raising=False)
        backend = resolve_backend()
        assert backend.name == "numpy"
        assert backend.version == str(np.__version__)

    def test_resolved_instance_passes_through(self):
        backend = resolve_backend("numpy")
        assert resolve_backend(backend) is backend

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(KERNEL_BACKEND_ENV, "numpy")
        assert resolve_backend().name == "numpy"

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(KERNEL_BACKEND_ENV, "definitely-not-a-backend")
        assert resolve_backend("numpy").name == "numpy"

    def test_unknown_name_lists_available(self):
        with pytest.raises(KernelBackendError, match="numpy"):
            resolve_backend("cuda-tensor-cores")

    def test_unknown_env_value_raises(self, monkeypatch):
        monkeypatch.setenv(KERNEL_BACKEND_ENV, "definitely-not-a-backend")
        with pytest.raises(KernelBackendError):
            resolve_backend()

    def test_builtins_listed(self):
        names = available_backends()
        assert "numpy" in names and "numba" in names

    def test_register_resolve_unregister_round_trip(self):
        mock = resolve_backend("numpy").renamed("mock")
        register_backend("mock", lambda: mock)
        try:
            assert "mock" in available_backends()
            assert resolve_backend("mock").name == "mock"
            with pytest.raises(KernelBackendError):
                register_backend("mock", lambda: mock)
            register_backend("mock", lambda: mock, replace_existing=True)
        finally:
            unregister_backend("mock")
        assert "mock" not in available_backends()
        with pytest.raises(KernelBackendError):
            resolve_backend("mock")

    def test_builtins_protected_from_unregistration(self):
        with pytest.raises(KernelBackendError):
            unregister_backend("numpy")
        with pytest.raises(KernelBackendError):
            unregister_backend("numba")

    @pytest.mark.skipif(HAS_NUMBA, reason="numba is installed")
    def test_missing_numba_falls_back_with_warning(self):
        with pytest.warns(KernelBackendWarning, match="falling back") as caught:
            backend = resolve_backend("numba")
        assert backend.name == "numpy"
        # The warning carries both names as data: what was asked for and
        # what the run actually uses (the latter also lands in corpus
        # metadata, pinned below).
        assert caught[0].message.requested == "numba"
        assert caught[0].message.effective == "numpy"

    def test_fallback_warning_carries_requested_and_effective(self, graph, model):
        def broken_loader():
            raise KernelBackendError("deliberately unavailable")

        register_backend("flaky", broken_loader)
        try:
            with pytest.warns(KernelBackendWarning) as caught:
                backend = resolve_backend("flaky")
            assert backend.name == "numpy"
            warning = caught[0].message
            assert warning.requested == "flaky"
            assert warning.effective == "numpy"
            assert "'flaky'" in str(warning)

            from repro.walks import BatchWalkEngine

            with pytest.warns(KernelBackendWarning):
                engine = BatchWalkEngine(graph, model, backend="flaky")
            corpus = parallel_walks(
                engine, num_walks=1, length=8, workers=1, chunk_size=16, rng=3
            )
            # The *effective* backend is what metadata records — a resumed
            # or audited corpus must never claim the backend that failed.
            assert corpus.metadata["backend"] == "numpy"
        finally:
            unregister_backend("flaky")

    @pytest.mark.skipif(not HAS_NUMBA, reason="numba not installed")
    def test_numba_backend_loads(self):
        backend = resolve_backend("numba")
        assert backend.name == "numba"
        assert backend.version


# ----------------------------------------------------------------------
# kernel equivalence: loop implementations vs numpy reference
# ----------------------------------------------------------------------
class TestKernelEquivalence:
    """The plain-Python loop forms (what ``numba.njit`` compiles) must be
    bit-identical to the numpy reference kernels: same picks, same float
    comparisons, same sentinel codes.  20 randomized trials per kernel."""

    TRIALS = 20

    @staticmethod
    def _segments(gen, max_groups=8, max_size=6):
        num_groups = int(gen.integers(1, max_groups + 1))
        sizes = gen.integers(1, max_size + 1, size=num_groups).astype(np.int64)
        starts = np.concatenate(([0], np.cumsum(sizes)[:-1])).astype(np.int64)
        return num_groups, sizes, starts

    def test_regroup_pairs(self):
        gen = np.random.default_rng(101)
        for _ in range(self.TRIALS):
            keys = gen.integers(0, 12, size=int(gen.integers(1, 40))).astype(
                np.int64
            )
            uk_np, group_np = numpy_backend.regroup_pairs(np, keys)
            uk_py, group_py = numba_backend.regroup_pairs(keys)
            assert np.array_equal(uk_np, uk_py)
            assert np.array_equal(group_np, group_py)

    def test_gather_segments(self):
        gen = np.random.default_rng(102)
        for _ in range(self.TRIALS):
            values = gen.random(64)
            _, sizes, _ = self._segments(gen)
            starts = gen.integers(
                0, len(values) - int(sizes.max()), size=len(sizes)
            ).astype(np.int64)
            out_np = numpy_backend.gather_segments(np, starts, sizes, values)
            out_py = numba_backend.gather_segments(starts, sizes, values)
            assert np.array_equal(out_np, out_py)

    def test_segmented_inverse_cdf(self):
        gen = np.random.default_rng(103)
        for _ in range(self.TRIALS):
            num_groups, sizes, _ = self._segments(gen)
            flat = gen.random(int(sizes.sum())) + 1e-3
            group = gen.integers(0, num_groups, size=30).astype(np.int64)
            uniforms = gen.random(len(group))
            picks_np, bad_np = numpy_backend.segmented_inverse_cdf(
                np, flat, sizes, group, uniforms
            )
            picks_py, bad_py = numba_backend.segmented_inverse_cdf(
                flat, sizes, group, uniforms
            )
            assert bad_np == bad_py == -1
            assert np.array_equal(picks_np, picks_py)

    def test_segmented_inverse_cdf_zero_mass_sentinel(self):
        sizes = np.array([2, 2], dtype=np.int64)
        flat = np.array([0.5, 0.5, 0.0, 0.0])
        group = np.array([0, 1], dtype=np.int64)
        uniforms = np.array([0.3, 0.7])
        _, bad_np = numpy_backend.segmented_inverse_cdf(
            np, flat, sizes, group, uniforms
        )
        _, bad_py = numba_backend.segmented_inverse_cdf(
            flat, sizes, group, uniforms
        )
        assert bad_np == bad_py == 1

    def test_flat_alias_pick(self):
        gen = np.random.default_rng(104)
        for _ in range(self.TRIALS):
            k = int(gen.integers(1, 40))
            sizes = gen.integers(1, 7, size=k).astype(np.int64)
            base = gen.integers(0, 50, size=k).astype(np.int64)
            table = int((base + sizes).max())
            prob_flat = gen.random(table)
            alias_flat = gen.integers(0, 6, size=table).astype(np.int64)
            u_column = gen.random(k)
            u_keep = gen.random(k)
            out_np = numpy_backend.flat_alias_pick(
                np, prob_flat, alias_flat, base, sizes, u_column, u_keep
            )
            out_py = numba_backend.flat_alias_pick(
                prob_flat, alias_flat, base, sizes, u_column, u_keep
            )
            assert np.array_equal(out_np, out_py)

    def test_gathered_alias_pick(self):
        gen = np.random.default_rng(105)
        for _ in range(self.TRIALS):
            num_groups, sizes, starts = self._segments(gen)
            table = int(sizes.sum())
            prob_flat = gen.random(table)
            alias_flat = gen.integers(0, 6, size=table).astype(np.int64)
            group = gen.integers(0, num_groups, size=25).astype(np.int64)
            u_column = gen.random(len(group))
            u_keep = gen.random(len(group))
            out_np = numpy_backend.gathered_alias_pick(
                np, prob_flat, alias_flat, starts, sizes, group, u_column, u_keep
            )
            out_py = numba_backend.gathered_alias_pick(
                prob_flat, alias_flat, starts, sizes, group, u_column, u_keep
            )
            assert np.array_equal(out_np, out_py)

    def test_acceptance_mask(self):
        gen = np.random.default_rng(106)
        for _ in range(self.TRIALS):
            n = int(gen.integers(1, 50))
            ratios = gen.random(n) * 2.0
            factors = gen.random(n) * 2.0
            uniforms = gen.random(n)
            out_np = numpy_backend.acceptance_mask(np, ratios, factors, uniforms)
            out_py = numba_backend.acceptance_mask(ratios, factors, uniforms)
            assert np.array_equal(out_np, out_py)

    def test_advance_frontier(self):
        gen = np.random.default_rng(107)
        for _ in range(self.TRIALS):
            n = 24
            degrees = gen.integers(0, 5, size=40).astype(np.int64)
            idx = np.flatnonzero(gen.random(n) < 0.6).astype(np.int64)
            step = gen.integers(0, 40, size=n).astype(np.int64)
            state_np = [
                gen.integers(0, 40, size=n).astype(np.int64),
                gen.integers(0, 40, size=n).astype(np.int64),
                gen.random(n) < 0.8,
            ]
            state_py = [arr.copy() for arr in state_np]
            numpy_backend.advance_frontier(
                np, idx, step, state_np[0], state_np[1], state_np[2], degrees
            )
            numba_backend.advance_frontier(
                idx, step, state_py[0], state_py[1], state_py[2], degrees
            )
            for got, want in zip(state_py, state_np):
                assert np.array_equal(got, want)

    @pytest.mark.skipif(not HAS_NUMBA, reason="numba not installed")
    def test_compiled_kernels_match_loop_forms(self):
        """Smoke the actual njit-compiled callables on one input set."""
        compiled = resolve_backend("numba")
        gen = np.random.default_rng(108)
        keys = gen.integers(0, 9, size=30).astype(np.int64)
        assert np.array_equal(
            compiled.regroup_pairs(keys)[1], numba_backend.regroup_pairs(keys)[1]
        )
        ratios, factors, uniforms = gen.random(16), gen.random(16), gen.random(16)
        assert np.array_equal(
            compiled.acceptance_mask(ratios, factors, uniforms),
            numba_backend.acceptance_mask(ratios, factors, uniforms),
        )


# ----------------------------------------------------------------------
# engine integration: metadata, checkpoint signature, counter merging
# ----------------------------------------------------------------------
class TestEngineIntegration:
    def test_backend_recorded_in_stats_and_metadata(self, framework):
        engine = framework.batch_engine(cache_budget=5_000)
        assert engine.stats()["backend"] == "numpy"
        corpus = parallel_walks(
            engine, num_walks=2, length=10, workers=1, chunk_size=16, rng=3
        )
        assert corpus.metadata["backend"] == "numpy"

    def test_scalar_engine_has_no_backend_key(self, framework):
        corpus = parallel_walks(
            framework.walk_engine,
            num_walks=1,
            length=8,
            workers=1,
            chunk_size=16,
            rng=3,
        )
        assert "backend" not in corpus.metadata

    def test_backend_rejected_for_scalar_engine(self, framework):
        with pytest.raises(OptimizerError, match="batch"):
            framework.generate_walks(
                num_walks=1, length=4, engine="scalar", backend="numpy"
            )

    def test_cross_backend_resume_refused(self, framework, tmp_path):
        path = tmp_path / "walks.ckpt"
        kwargs = dict(
            num_walks=2, length=10, workers=1, chunk_size=16, rng=5,
            checkpoint=path,
        )
        parallel_walks(framework.batch_engine(backend="numpy"), **kwargs)

        mock = resolve_backend("numpy").renamed("mock")
        register_backend("mock", lambda: mock)
        try:
            with pytest.raises(CheckpointError, match="different run"):
                parallel_walks(framework.batch_engine(backend="mock"), **kwargs)
        finally:
            unregister_backend("mock")

    @pytest.mark.parametrize("workers", [1, 4])
    def test_counters_are_worker_count_invariant(self, graph, model, workers):
        """Per-chunk counter deltas merge associatively: 4 forked workers
        report the same dispatch/cache totals as the sequential path."""
        # An all-naive assignment routes every step through the edge-state
        # cache, so the cache counters see real traffic.
        fw = MemoryAwareFramework.memory_unaware(
            graph, model, SamplerKind.NAIVE, rng=0
        )
        corpus = parallel_walks(
            fw.batch_engine(cache_budget=5_000),
            num_walks=3,
            length=20,
            workers=workers,
            chunk_size=8,
            rng=11,
        )
        reference = parallel_walks(
            fw.batch_engine(cache_budget=5_000),
            num_walks=3,
            length=20,
            workers=1,
            chunk_size=8,
            rng=11,
        )
        assert corpus_sha(corpus) == corpus_sha(reference)
        assert corpus.metadata["steps"] == reference.metadata["steps"]
        assert corpus.metadata["dispatch"] == reference.metadata["dispatch"]
        assert corpus.metadata["cache"] == reference.metadata["cache"]
        # The pooled run actually exercised the cache and dispatch paths.
        assert corpus.metadata["steps"] > 0
        lookups = (
            corpus.metadata["cache"]["hits"] + corpus.metadata["cache"]["misses"]
        )
        assert lookups > 0


# ----------------------------------------------------------------------
# cross-backend bit-identity (numba leg; skipped without the soft dep)
# ----------------------------------------------------------------------
@pytest.mark.skipif(not HAS_NUMBA, reason="numba not installed")
class TestNumbaBitIdentity:
    def test_walks_identical_to_numpy(self, framework):
        a = framework.batch_engine(backend="numpy").walks(
            num_walks=3, length=15, rng=17
        )
        b = framework.batch_engine(backend="numba").walks(
            num_walks=3, length=15, rng=17
        )
        assert corpus_sha(a) == corpus_sha(b)

    def test_dsan_fingerprints_identical_to_numpy(self, framework):
        reports = {}
        for backend in ("numpy", "numba"):
            corpus = parallel_walks(
                framework.batch_engine(cache_budget=5_000, backend=backend),
                num_walks=2,
                length=12,
                workers=1,
                chunk_size=8,
                rng=19,
                dsan=True,
            )
            reports[backend] = DsanReport.from_dict(corpus.metadata["dsan"])
        assert diff_reports(reports["numpy"], reports["numba"]) == []
