"""Tests for assignment / bounding-constant persistence."""

import numpy as np
import pytest

from repro import (
    CostParams,
    build_cost_table,
    compute_bounding_constants,
    estimate_bounding_constants,
    lp_greedy,
)
from repro.exceptions import AssignmentError, BoundingConstantError
from repro.framework.serialize import (
    load_assignment,
    load_bounding_constants,
    save_assignment,
    save_bounding_constants,
)


@pytest.fixture
def assignment(medium_graph, nv_model):
    constants = compute_bounding_constants(medium_graph, nv_model)
    table = build_cost_table(medium_graph, constants, CostParams())
    return lp_greedy(table, 0.3 * table.max_memory()), table, constants


class TestAssignmentRoundTrip:
    def test_round_trip(self, assignment, tmp_path):
        original, table, _ = assignment
        path = tmp_path / "assignment.npz"
        save_assignment(original, path)
        loaded = load_assignment(path)
        assert np.array_equal(loaded.samplers, original.samplers)
        assert loaded.used_memory == pytest.approx(original.used_memory)
        assert loaded.total_time == pytest.approx(original.total_time)
        assert loaded.budget == pytest.approx(original.budget)
        assert loaded.algorithm == original.algorithm
        loaded.validate_against(table)  # still consistent

    def test_infinite_budget_round_trip(self, assignment, tmp_path):
        from repro.optimizer import Assignment

        original, _, _ = assignment
        unbounded = Assignment(
            samplers=original.samplers,
            used_memory=original.used_memory,
            total_time=original.total_time,
            budget=np.inf,
            algorithm="all-alias",
        )
        path = tmp_path / "a.npz"
        save_assignment(unbounded, path)
        assert load_assignment(path).budget == np.inf

    def test_rejects_wrong_file(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez_compressed(path, stuff=np.ones(3))
        with pytest.raises(AssignmentError, match="not a repro assignment"):
            load_assignment(path)


class TestConstantsRoundTrip:
    def test_exact_round_trip(self, medium_graph, nv_model, tmp_path):
        constants = compute_bounding_constants(medium_graph, nv_model)
        path = tmp_path / "cv.npz"
        save_bounding_constants(constants, path)
        loaded = load_bounding_constants(path)
        assert np.allclose(loaded.values, constants.values)
        assert loaded.exact
        assert loaded.meta == constants.meta

    def test_estimated_round_trip(self, medium_graph, nv_model, tmp_path):
        constants = estimate_bounding_constants(
            medium_graph, nv_model, degree_threshold=10, rng=0
        )
        path = tmp_path / "cv.npz"
        save_bounding_constants(constants, path)
        loaded = load_bounding_constants(path)
        assert not loaded.exact
        assert loaded.estimated_nodes == constants.estimated_nodes
        assert loaded.degree_threshold == 10

    def test_loaded_constants_drive_framework(self, medium_graph, nv_model, tmp_path):
        """The whole point of the cache: skip T_Cv on restart."""
        from repro import MemoryAwareFramework

        constants = compute_bounding_constants(medium_graph, nv_model)
        path = tmp_path / "cv.npz"
        save_bounding_constants(constants, path)
        fw = MemoryAwareFramework(
            medium_graph, nv_model, budget=1e6,
            bounding_constants=load_bounding_constants(path),
        )
        assert fw.timings.bounding_seconds == 0.0

    def test_rejects_wrong_file(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez_compressed(path, stuff=np.ones(3))
        with pytest.raises(BoundingConstantError, match="not a repro bounding"):
            load_bounding_constants(path)
