"""Unit tests for distribution helpers."""

import numpy as np
import pytest

from repro.exceptions import DistributionError
from repro.sampling import normalize_distribution, validate_distribution
from repro.sampling.utils import empirical_distribution, total_variation_distance


class TestValidate:
    def test_valid_passes_through(self):
        arr = validate_distribution([1, 2, 3])
        assert arr.dtype == np.float64
        assert list(arr) == [1.0, 2.0, 3.0]

    def test_rejects_2d(self):
        with pytest.raises(DistributionError, match="1-D"):
            validate_distribution([[1, 2]])

    def test_rejects_empty(self):
        with pytest.raises(DistributionError, match="non-empty"):
            validate_distribution([])

    def test_rejects_nan(self):
        with pytest.raises(DistributionError, match="non-finite"):
            validate_distribution([1.0, np.nan])

    def test_rejects_negative(self):
        with pytest.raises(DistributionError, match="negative"):
            validate_distribution([1.0, -0.5])

    def test_rejects_zero_mass(self):
        with pytest.raises(DistributionError, match="zero total"):
            validate_distribution([0.0, 0.0])


class TestNormalize:
    def test_sums_to_one(self):
        p = normalize_distribution([2, 2, 4])
        assert p.sum() == pytest.approx(1.0)
        assert p[2] == pytest.approx(0.5)

    def test_already_normalised_unchanged(self):
        p = normalize_distribution([0.25, 0.75])
        assert list(p) == [0.25, 0.75]


class TestTotalVariation:
    def test_identical_distributions(self):
        assert total_variation_distance([1, 2], [2, 4]) == pytest.approx(0.0)

    def test_disjoint_distributions(self):
        assert total_variation_distance([1, 0], [0, 1]) == pytest.approx(1.0)

    def test_length_mismatch(self):
        with pytest.raises(DistributionError, match="length mismatch"):
            total_variation_distance([1, 1], [1, 1, 1])

    def test_symmetric(self):
        p, q = [0.2, 0.3, 0.5], [0.5, 0.2, 0.3]
        assert total_variation_distance(p, q) == pytest.approx(
            total_variation_distance(q, p)
        )


class TestEmpirical:
    def test_histogram(self):
        p = empirical_distribution(np.array([0, 0, 1, 2]), 3)
        assert list(p) == [0.5, 0.25, 0.25]

    def test_out_of_range(self):
        with pytest.raises(DistributionError):
            empirical_distribution(np.array([5]), 3)

    def test_no_samples(self):
        with pytest.raises(DistributionError):
            empirical_distribution(np.array([]), 3)
