"""Unit tests for common-neighbour checkers."""

import numpy as np
import pytest

from repro.exceptions import GraphFormatError
from repro.graph import (
    BinarySearchChecker,
    HashSetChecker,
    MergeChecker,
    make_checker,
)


@pytest.fixture(params=["binary", "hash", "merge"])
def checker(request, toy_graph):
    return make_checker(request.param, toy_graph)


class TestCheckers:
    def test_has_edge_agreement(self, checker, toy_graph):
        for u in range(toy_graph.num_nodes):
            for z in range(toy_graph.num_nodes):
                assert checker.has_edge(u, z) == toy_graph.has_edge(u, z)

    def test_has_edges_bulk_agreement(self, checker, toy_graph):
        targets = np.arange(toy_graph.num_nodes)
        for u in range(toy_graph.num_nodes):
            expected = [toy_graph.has_edge(u, int(z)) for z in targets]
            assert list(checker.has_edges(u, targets)) == expected

    def test_make_checker_unknown(self, toy_graph):
        with pytest.raises(GraphFormatError):
            make_checker("nope", toy_graph)


class TestCosts:
    def test_binary_cost_is_log(self, toy_graph):
        checker = BinarySearchChecker(toy_graph)
        assert checker.check_cost(8) == pytest.approx(3.0)
        assert checker.check_cost(1) == 1.0  # clamped
        assert checker.check_cost(0) == 1.0

    def test_hash_cost_constant(self, toy_graph):
        checker = HashSetChecker(toy_graph)
        assert checker.check_cost(1) == 1.0
        assert checker.check_cost(10_000) == 1.0

    def test_merge_cost_constant(self, toy_graph):
        assert MergeChecker(toy_graph).check_cost(500) == 1.0

    def test_hash_extra_memory_positive(self, toy_graph):
        checker = HashSetChecker(toy_graph)
        assert checker.extra_memory_bytes() > 0

    def test_binary_extra_memory_zero(self, toy_graph):
        assert BinarySearchChecker(toy_graph).extra_memory_bytes() == 0


class TestAgreementOnRandomGraph:
    def test_all_checkers_agree(self, medium_graph, rng):
        checkers = [
            make_checker(name, medium_graph) for name in ("binary", "hash", "merge")
        ]
        for _ in range(100):
            u = int(rng.integers(medium_graph.num_nodes))
            z = int(rng.integers(medium_graph.num_nodes))
            answers = {c.has_edge(u, z) for c in checkers}
            assert len(answers) == 1
