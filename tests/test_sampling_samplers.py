"""Unit and statistical tests for the three sampling primitives.

Every sampler must reproduce its target distribution; the statistical
checks use total-variation distance against the exact distribution with
sample sizes where TV < 0.05 holds comfortably for correct samplers.
"""

import numpy as np
import pytest

from repro import AliasTable, CumulativeSampler, NaiveSampler, RejectionSampler
from repro.exceptions import DistributionError, SamplerError
from repro.sampling.utils import empirical_distribution, total_variation_distance

TARGET = np.array([0.2, 0.3, 0.4, 0.1])  # the paper's Figure 3 example


def tv_of(sampler, target, rng, n=20_000):
    samples = sampler.sample_many(n, rng)
    return total_variation_distance(
        empirical_distribution(samples, len(target)), target
    )


class TestCumulativeSampler:
    @pytest.mark.parametrize("search", ["binary", "linear"])
    def test_matches_target(self, search, rng):
        sampler = CumulativeSampler(TARGET, search=search)
        assert tv_of(sampler, TARGET, rng) < 0.02

    def test_single_outcome(self, rng):
        sampler = CumulativeSampler([5.0])
        assert sampler.sample(rng) == 0

    def test_unnormalised_weights(self, rng):
        sampler = CumulativeSampler([2, 3, 4, 1])
        assert tv_of(sampler, TARGET, rng) < 0.02

    def test_invalid_search(self):
        with pytest.raises(ValueError):
            CumulativeSampler(TARGET, search="interpolation")

    def test_memory_is_one_float_per_outcome(self):
        assert CumulativeSampler(TARGET).memory_bytes(4, 4) == 16

    def test_scalar_and_vector_agree_in_distribution(self, rng):
        sampler = CumulativeSampler(TARGET, search="linear")
        scalar = np.array([sampler.sample(rng) for _ in range(5000)])
        p = empirical_distribution(scalar, 4)
        assert total_variation_distance(p, TARGET) < 0.05


class TestNaiveSampler:
    def test_matches_target(self, rng):
        assert tv_of(NaiveSampler(TARGET), TARGET, rng) < 0.02

    def test_scalar_path_matches_target(self, rng):
        sampler = NaiveSampler(TARGET)
        samples = np.array([sampler.sample(rng) for _ in range(10_000)])
        p = empirical_distribution(samples, 4)
        assert total_variation_distance(p, TARGET) < 0.03

    def test_zero_memory(self):
        assert NaiveSampler(TARGET).memory_bytes() == 0

    def test_len(self):
        assert len(NaiveSampler(TARGET)) == 4

    def test_rejects_bad_distribution(self):
        with pytest.raises(DistributionError):
            NaiveSampler([0.0, 0.0])

    def test_zero_weight_outcome_never_drawn(self, rng):
        sampler = NaiveSampler([1.0, 0.0, 1.0])
        samples = sampler.sample_many(5000, rng)
        assert 1 not in samples


class TestAliasTable:
    def test_matches_target(self, rng):
        assert tv_of(AliasTable(TARGET), TARGET, rng) < 0.02

    def test_scalar_path_matches_target(self, rng):
        table = AliasTable(TARGET)
        samples = np.array([table.sample(rng) for _ in range(10_000)])
        p = empirical_distribution(samples, 4)
        assert total_variation_distance(p, TARGET) < 0.03

    def test_uniform_distribution(self, rng):
        table = AliasTable([1, 1, 1, 1])
        assert np.allclose(table.probability_table, 1.0)

    def test_tables_encode_exact_probabilities(self):
        # Reconstruct P from (U, K): p_i = (U_i + sum_j 1[K_j = i](1 - U_j)) / n.
        table = AliasTable(TARGET)
        n = table.num_outcomes
        recon = table.probability_table.copy()
        for j in range(n):
            if table.alias_table[j] != j:
                recon[table.alias_table[j]] += 1.0 - table.probability_table[j]
        assert np.allclose(recon / n, TARGET, atol=1e-12)

    def test_single_outcome(self, rng):
        table = AliasTable([3.0])
        assert table.sample(rng) == 0

    def test_highly_skewed(self, rng):
        target = np.array([0.999, 0.0005, 0.0005])
        table = AliasTable(target)
        samples = table.sample_many(20_000, rng)
        p = empirical_distribution(samples, 3)
        assert p[0] > 0.99

    def test_memory_cost_formula(self):
        assert AliasTable(TARGET).memory_bytes(4, 4) == 4 * 8

    def test_zero_weight_outcome_never_drawn(self, rng):
        table = AliasTable([1.0, 0.0, 3.0])
        samples = table.sample_many(10_000, rng)
        assert 1 not in samples


class TestRejectionSampler:
    def test_from_distributions_matches_target(self, rng):
        proposal = np.full(4, 0.25)
        sampler = RejectionSampler.from_distributions(
            TARGET, proposal, AliasTable(proposal)
        )
        samples = np.array([sampler.sample(rng) for _ in range(20_000)])
        p = empirical_distribution(samples, 4)
        assert total_variation_distance(p, TARGET) < 0.02

    def test_figure3_acceptance_ratios(self):
        # Paper Figure 3(a): uniform proposal, C = 1.6 → β = (.5, .75, 1, .25).
        proposal = np.full(4, 0.25)
        sampler = RejectionSampler.from_distributions(
            TARGET, proposal, AliasTable(proposal), bounding_constant=1.6
        )
        assert np.allclose(sampler.acceptance_ratios, [0.5, 0.75, 1.0, 0.25])

    def test_average_tries_converges_to_c(self, rng):
        proposal = np.full(4, 0.25)
        sampler = RejectionSampler.from_distributions(
            TARGET, proposal, AliasTable(proposal)
        )
        for _ in range(5000):
            sampler.sample(rng)
        assert sampler.average_tries == pytest.approx(1.6, rel=0.1)

    def test_oversized_bounding_constant_still_correct(self, rng):
        proposal = np.full(4, 0.25)
        sampler = RejectionSampler.from_distributions(
            TARGET, proposal, AliasTable(proposal), bounding_constant=5.0
        )
        samples = np.array([sampler.sample(rng) for _ in range(20_000)])
        p = empirical_distribution(samples, 4)
        assert total_variation_distance(p, TARGET) < 0.02
        assert sampler.average_tries > 3.0  # slower, as expected

    def test_undersized_bounding_constant_rejected(self):
        proposal = np.full(4, 0.25)
        with pytest.raises(SamplerError, match="below required"):
            RejectionSampler.from_distributions(
                TARGET, proposal, AliasTable(proposal), bounding_constant=1.0
            )

    def test_proposal_missing_mass_rejected(self):
        proposal = np.array([0.5, 0.5, 0.0, 0.0])
        with pytest.raises(SamplerError, match="zero mass"):
            RejectionSampler.from_distributions(
                TARGET, proposal, AliasTable([0.5, 0.5, 1e-12, 1e-12])
            )

    def test_nonuniform_proposal(self, rng):
        proposal = np.array([0.4, 0.1, 0.4, 0.1])
        sampler = RejectionSampler.from_distributions(
            TARGET, proposal, AliasTable(proposal)
        )
        samples = np.array([sampler.sample(rng) for _ in range(20_000)])
        p = empirical_distribution(samples, 4)
        assert total_variation_distance(p, TARGET) < 0.02

    def test_acceptance_length_mismatch(self):
        with pytest.raises(SamplerError, match="acceptance ratios"):
            RejectionSampler(AliasTable(TARGET), np.array([1.0, 1.0]))

    def test_acceptance_out_of_range(self):
        with pytest.raises(SamplerError, match="lie in"):
            RejectionSampler(AliasTable(TARGET), np.array([1.0, 2.0, 1.0, 1.0]))

    def test_all_zero_acceptance(self):
        with pytest.raises(SamplerError, match="positive"):
            RejectionSampler(AliasTable(TARGET), np.zeros(4))

    def test_max_tries_exhaustion(self, rng):
        sampler = RejectionSampler(
            AliasTable(TARGET),
            np.array([1e-12, 1e-12, 1e-12, 1e-12]),
            max_tries=10,
        )
        with pytest.raises(SamplerError, match="no acceptance"):
            sampler.sample(rng)

    def test_memory_includes_acceptance_floats(self):
        proposal = np.full(4, 0.25)
        sampler = RejectionSampler.from_distributions(
            TARGET, proposal, AliasTable(proposal)
        )
        assert sampler.memory_bytes(4, 4) == 4 * 8 + 4 * 4
