"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_experiment_choices(self):
        parser = build_parser()
        args = parser.parse_args(["table4"])
        assert args.experiment == "table4"
        assert args.scale == 1.0
        assert args.seed is None

    def test_scale_and_seed(self):
        args = build_parser().parse_args(["figure1", "--scale", "0.5", "--seed", "7"])
        assert args.scale == 0.5
        assert args.seed == 7

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure42"])

    def test_all_accepted(self):
        assert build_parser().parse_args(["all"]).experiment == "all"


class TestMain:
    def test_runs_table4(self, capsys):
        code = main(["table4", "--scale", "0.1", "--seed", "0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "table4" in out
        assert "Memory footprints" in out
        assert "completed in" in out

    def test_runs_figure1(self, capsys):
        code = main(["figure1", "--scale", "0.1"])
        assert code == 0
        assert "Alias memory explosion" in capsys.readouterr().out


class TestToolSubcommands:
    def test_info(self, capsys):
        code = main(["info", "youtube", "--scale", "0.2", "--seed", "0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "paper Table 2" in out
        assert "stand-in" in out

    def test_optimize_and_walk(self, tmp_path, capsys):
        from repro.graph import barabasi_albert_graph, save_edge_list

        graph_path = tmp_path / "g.txt"
        save_edge_list(barabasi_albert_graph(60, 3, rng=0), graph_path)

        code = main(
            [
                "optimize", str(graph_path), "--budget", "30000",
                "--param", "a=0.25", "--param", "b=4", "--seed", "0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "degree" in out and "mem %" in out

        walks_path = tmp_path / "walks.txt"
        code = main(
            [
                "walk", str(graph_path), "--budget", "30000",
                "--num-walks", "2", "--length", "6",
                "--output", str(walks_path), "--seed", "0",
            ]
        )
        assert code == 0
        assert "generated" in capsys.readouterr().out
        assert walks_path.exists()
        from repro import WalkCorpus

        corpus = WalkCorpus.load(walks_path)
        assert len(corpus) == 2 * 60

    def test_shard_build_inspect_walk(self, tmp_path, capsys):
        from repro.graph import barabasi_albert_graph, save_edge_list

        graph_path = tmp_path / "g.txt"
        save_edge_list(barabasi_albert_graph(60, 3, rng=0), graph_path)
        layout_dir = tmp_path / "shards"

        code = main(
            [
                "shard", "build", str(graph_path),
                "--output", str(layout_dir), "--num-shards", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "wrote 3 shard(s)" in out
        assert (layout_dir / "manifest.json").exists()

        code = main(["shard", "inspect", str(layout_dir), "--verify"])
        assert code == 0
        out = capsys.readouterr().out
        assert "3 shard(s)" in out and "verified" in out

        walks_path = tmp_path / "walks.txt"
        code = main(
            [
                "walk", str(graph_path), "--budget", "5e8",
                "--shards", str(layout_dir), "--resident-shards", "2",
                "--num-walks", "1", "--length", "5",
                "--seed", "0", "--output", str(walks_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "generated" in out and "load(s)" in out
        assert walks_path.exists()

        # The same seed through the in-memory scheduler path (no layout
        # on disk yet: built on demand) produces the identical corpus.
        auto_dir = tmp_path / "auto"
        other_path = tmp_path / "walks2.txt"
        code = main(
            [
                "walk", str(graph_path), "--budget", "5e8",
                "--shards", str(auto_dir), "--num-shards", "5",
                "--shard-policy", "lockstep",
                "--num-walks", "1", "--length", "5",
                "--seed", "0", "--output", str(other_path),
            ]
        )
        assert code == 0
        assert "built 5-shard layout" in capsys.readouterr().out
        assert other_path.read_text() == walks_path.read_text()

    def test_bad_param_format(self):
        import pytest as _pytest

        with _pytest.raises(SystemExit):
            main(["optimize", "nowhere.txt", "--budget", "1", "--param", "oops"])
