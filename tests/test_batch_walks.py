"""Tests for the batched walk engine."""

import time

import numpy as np
import pytest

from repro import MemoryAwareFramework, Node2VecModel, SamplerKind
from repro.analysis import diagnose_walks
from repro.exceptions import WalkError
from repro.graph import from_edges, powerlaw_cluster_graph
from repro.walks.batch import batch_walks


@pytest.fixture(scope="module")
def dense_graph():
    return powerlaw_cluster_graph(30, 3, 0.5, rng=5)


class TestBatchWalks:
    def test_counts_and_lengths(self, dense_graph):
        model = Node2VecModel(0.5, 2.0)
        corpus = batch_walks(
            dense_graph, model, num_walks=3, length=10, rng=0
        )
        assert len(corpus) == 3 * dense_graph.num_nodes
        assert all(len(w) == 11 for w in corpus)

    def test_walks_follow_edges(self, dense_graph):
        model = Node2VecModel(0.25, 4.0)
        corpus = batch_walks(dense_graph, model, num_walks=2, length=12, rng=1)
        for walk in corpus:
            for a, b in zip(walk, walk[1:]):
                assert dense_graph.has_edge(int(a), int(b))

    def test_explicit_starts(self, dense_graph):
        model = Node2VecModel(1.0, 1.0)
        corpus = batch_walks(
            dense_graph, model, starts=[4, 7], num_walks=5, length=6, rng=0
        )
        assert len(corpus) == 10
        assert {int(w[0]) for w in corpus} == {4, 7}

    def test_dead_ends_stop_early(self):
        g = from_edges([(0, 1), (1, 2)], undirected=False, num_nodes=3)
        model = Node2VecModel(1.0, 1.0)
        corpus = batch_walks(g, model, starts=[0], length=10, rng=0)
        assert list(corpus[0]) == [0, 1, 2]

    def test_zero_length(self, dense_graph):
        corpus = batch_walks(
            dense_graph, Node2VecModel(1, 1), starts=[3], length=0, rng=0
        )
        assert list(corpus[0]) == [3]

    def test_isolated_start(self):
        g = from_edges([(0, 1)], num_nodes=3)
        corpus = batch_walks(
            g, Node2VecModel(1, 1), starts=[2], length=5, rng=0
        )
        assert list(corpus[0]) == [2]

    def test_validation(self, dense_graph):
        model = Node2VecModel(1, 1)
        with pytest.raises(WalkError):
            batch_walks(dense_graph, model, num_walks=0)
        with pytest.raises(WalkError):
            batch_walks(dense_graph, model, length=-1)
        with pytest.raises(WalkError):
            batch_walks(dense_graph, model, starts=[99])

    def test_deterministic(self, dense_graph):
        model = Node2VecModel(0.5, 2.0)
        a = batch_walks(dense_graph, model, num_walks=2, length=8, rng=3)
        b = batch_walks(dense_graph, model, num_walks=2, length=8, rng=3)
        for x, y in zip(a, b):
            assert np.array_equal(x, y)


class TestStatisticalEquivalence:
    def test_matches_exact_distributions(self, dense_graph):
        """Batched walks obey the same e2e distributions (noise-aware)."""
        model = Node2VecModel(0.5, 2.0)
        corpus = batch_walks(dense_graph, model, num_walks=60, length=20, rng=2)
        diagnostics = diagnose_walks(dense_graph, model, corpus, min_samples=200)
        assert diagnostics.contexts_checked > 0
        assert diagnostics.is_faithful(max_noise_units=3.5)

    def test_matches_scalar_engine_statistics(self, dense_graph):
        """Batch and scalar engines produce matching visit distributions."""
        model = Node2VecModel(0.25, 4.0)
        batch = batch_walks(dense_graph, model, num_walks=40, length=15, rng=4)
        fw = MemoryAwareFramework.memory_unaware(
            dense_graph, model, SamplerKind.ALIAS, rng=0
        )
        from repro import WalkCorpus

        scalar = WalkCorpus.from_walks(
            fw.generate_walks(num_walks=40, length=15, rng=4)
        )
        visits_batch = batch.visit_counts(dense_graph.num_nodes).astype(float)
        visits_scalar = scalar.visit_counts(dense_graph.num_nodes).astype(float)
        p = visits_batch / visits_batch.sum()
        q = visits_scalar / visits_scalar.sum()
        # Walk samples are autocorrelated, so the visit histograms carry
        # more variance than i.i.d. draws would; 0.06 is ~3 sigma here.
        assert 0.5 * np.abs(p - q).sum() < 0.06


class TestAmortisation:
    def test_batch_faster_than_scalar_naive(self):
        """The whole point: batching beats per-sample naive walking."""
        graph = powerlaw_cluster_graph(150, 4, 0.3, rng=1)
        model = Node2VecModel(0.25, 4.0)

        started = time.perf_counter()
        batch_walks(graph, model, num_walks=10, length=20, rng=0)
        batch_seconds = time.perf_counter() - started

        fw = MemoryAwareFramework.memory_unaware(
            graph, model, SamplerKind.NAIVE, rng=0
        )
        started = time.perf_counter()
        fw.generate_walks(num_walks=10, length=20, rng=0)
        scalar_seconds = time.perf_counter() - started

        assert batch_seconds < scalar_seconds


class TestBatchPageRank:
    def test_matches_exact(self, dense_graph):
        from repro.walks import exact_second_order_pagerank
        from repro.walks.batch import batch_second_order_pagerank
        from repro.sampling.utils import total_variation_distance

        model = Node2VecModel(0.5, 2.0)
        query = int(dense_graph.degrees.argmax())
        exact = exact_second_order_pagerank(
            dense_graph, model, query, decay=0.8, max_length=8
        )
        estimate = batch_second_order_pagerank(
            dense_graph, model, query,
            decay=0.8, max_length=8, num_samples=8000, rng=1,
        )
        assert total_variation_distance(estimate + 1e-15, exact + 1e-15) < 0.05

    def test_matches_scalar_estimator(self, dense_graph):
        from repro import MemoryAwareFramework, SamplerKind, second_order_pagerank
        from repro.walks.batch import batch_second_order_pagerank
        from repro.sampling.utils import total_variation_distance

        model = Node2VecModel(0.25, 4.0)
        query = 0
        fw = MemoryAwareFramework.memory_unaware(
            dense_graph, model, SamplerKind.ALIAS, rng=0
        )
        scalar = second_order_pagerank(
            fw.walk_engine, query, decay=0.7, max_length=10,
            num_samples=6000, rng=2,
        )
        batched = batch_second_order_pagerank(
            dense_graph, model, query, decay=0.7, max_length=10,
            num_samples=6000, rng=3,
        )
        assert total_variation_distance(
            batched + 1e-15, scalar.scores + 1e-15
        ) < 0.05

    def test_decay_zero_is_delta(self, dense_graph):
        from repro.walks.batch import batch_second_order_pagerank

        scores = batch_second_order_pagerank(
            dense_graph, Node2VecModel(1, 1), 3,
            decay=0.0, num_samples=100, rng=0,
        )
        assert scores[3] == 1.0

    def test_decay_one_full_length(self, dense_graph):
        from repro.walks.batch import batch_second_order_pagerank

        scores = batch_second_order_pagerank(
            dense_graph, Node2VecModel(1, 1), 3,
            decay=1.0, max_length=5, num_samples=200, rng=0,
        )
        assert scores.sum() == pytest.approx(1.0)

    def test_validation(self, dense_graph):
        from repro.walks.batch import batch_second_order_pagerank

        model = Node2VecModel(1, 1)
        with pytest.raises(WalkError):
            batch_second_order_pagerank(dense_graph, model, 99)
        with pytest.raises(WalkError):
            batch_second_order_pagerank(dense_graph, model, 0, decay=1.2)
        with pytest.raises(WalkError):
            batch_second_order_pagerank(dense_graph, model, 0, num_samples=0)
