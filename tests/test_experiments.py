"""Tests for the experiment harness: each table/figure runs at tiny scale
and satisfies its paper-shape assertions."""

import pytest

from repro import AutoregressiveModel, Node2VecModel
from repro.exceptions import ExperimentError
from repro.experiments import (
    Report,
    Table,
    available_experiments,
    get_experiment,
    run_experiment,
)
from repro.experiments import figure1, figure4, figure7, figure8, figure9
from repro.experiments import table3, table4, table5
from repro.experiments.figure7 import TaskConfig

TINY = {"scale": 0.12}
FAST_TASK = TaskConfig(
    walks_per_node=1, walk_length=6, pagerank_queries=2, pagerank_samples=40
)
ONE_MODEL = {"NV(0.25,4)": Node2VecModel(0.25, 4.0)}
AUTO_MODEL = {"Auto(0.8)": AutoregressiveModel(0.8)}


class TestReporting:
    def test_table_add_and_render(self):
        t = Table("demo", ["a", "b"])
        t.add_row(1, 2.5)
        text = t.render()
        assert "demo" in text and "2.500" in text

    def test_table_wrong_arity(self):
        t = Table("demo", ["a", "b"])
        with pytest.raises(ExperimentError):
            t.add_row(1)

    def test_table_column(self):
        t = Table("demo", ["a", "b"])
        t.add_row(1, 2)
        t.add_row(3, 4)
        assert t.column("b") == [2, 4]
        with pytest.raises(ExperimentError):
            t.column("c")

    def test_report_lookup(self):
        r = Report("x", "desc")
        t = r.add_table(Table("t1", ["c"]))
        assert r.table("t1") is t
        with pytest.raises(ExperimentError):
            r.table("t2")

    def test_report_render_includes_notes(self):
        r = Report("x", "desc")
        r.add_note("hello")
        assert "hello" in r.render()

    def test_none_cells_render_dash(self):
        t = Table("demo", ["a"])
        t.add_row(None)
        assert "-" in t.render()


class TestRegistry:
    def test_all_registered(self):
        names = available_experiments()
        assert len(names) == 10
        assert {"figure1", "figure4", "figure7", "figure8", "figure9",
                "table3", "table4", "table5", "ablation",
                "validation"} == set(names)

    def test_unknown_experiment(self):
        with pytest.raises(ExperimentError):
            get_experiment("figure99")

    def test_run_by_name(self):
        report = run_experiment("table4", scale=0.1, rng=0)
        assert report.name == "table4"


class TestFigure1:
    def test_shape(self):
        report = figure1.run(scale=0.1, rng=0)
        table = report.table("Alias memory explosion")
        assert len(table.rows) == 6
        # The headline shape: alias footprint dwarfs the graph size.
        for ratio in table.column("ratio"):
            assert ratio > 10


class TestTable4:
    def test_footprint_ordering(self):
        report = table4.run(scale=0.1, rng=0)
        table = report.table("Memory footprints")
        for row in table.rows:
            _, naive, rejection, alias, size = row
            assert naive < rejection < alias
            assert rejection > size  # rejection ~ graph size or above
            assert alias > 10 * size


class TestFigure4:
    def test_estimation_converges(self):
        report = figure4.run(scale=0.1, thresholds=(5, 40), rng=0)
        # One histogram table per model.
        assert len(report.tables) == 4
        for table in report.tables:
            exact = table.column("exact")
            est = table.column("D_th=40")
            assert sum(exact) == sum(est)  # same node total
            # Larger threshold tracks the exact histogram within 30%.
            diff = sum(abs(a - b) for a, b in zip(exact, est))
            assert diff <= 0.6 * sum(exact)


class TestTable3:
    def test_estimation_saves_time(self):
        report = table3.run(
            datasets=("flickr",), scale=0.15, degree_threshold=10, rng=0
        )
        table = report.tables[0]
        # Estimation must cut the ratio-evaluation count (the O(Σ d_v²) →
        # O(Σ d_v·D_th) claim of §3.3); wall-clock savings only emerge at
        # degrees far beyond this tiny stand-in.
        saves = table.column("eval save %")
        assert min(saves) > 30
        drift = table.column("mean |ΔC_v|")
        assert all(d < 3.0 for d in drift)


class TestFigure7:
    def test_lp_beats_degree_at_low_budget(self):
        report = figure7.run(
            datasets=("livejournal",),
            ratios=(0.1, 1.0),
            scale=0.12,
            config=FAST_TASK,
            models=ONE_MODEL,
            rng=0,
        )
        table = report.tables[0]
        rows = {
            (r[1], r[2]): r for r in table.rows  # (algorithm, ratio) -> row
        }
        modeled = {key: row[4] for key, row in rows.items()}
        # Modeled cost: LP-std at 0.1 beats both degree variants at 0.1.
        assert modeled[("LP-std", 0.1)] <= modeled[("Deg-inc", 0.1)]
        assert modeled[("LP-std", 0.1)] <= modeled[("Deg-dec", 0.1)]
        # All algorithms improve (or tie) from ratio 0.1 to 1.0.
        for algo in ("LP-std", "LP-est", "Deg-inc", "Deg-dec"):
            assert modeled[(algo, 1.0)] <= modeled[(algo, 0.1)]


class TestTable5:
    def test_oom_and_ordering(self):
        report = table5.run(
            datasets=("youtube", "livejournal"),
            scale=0.12,
            config=FAST_TASK,
            models=ONE_MODEL,
            rng=0,
        )
        lj = report.table(
            next(t.title for t in report.tables if t.title.startswith("livejournal"))
        )
        status = {row[1]: row[4] for row in lj.rows}
        assert status["alias"] == "OOM"
        assert status["LP-std(1.0)"] == "ok"
        assert status["LP-std(0.1)"] == "ok"
        assert status["rejection"] == "ok"


class TestFigure8:
    def test_gates_and_improvement(self):
        # NV(4,0.25) has small bounding constants, so rejection is fast and
        # the naive/rejection modeled-cost gap is wide even at tiny scale —
        # the right regime for exercising the timeout gate.
        report = figure8.run(
            datasets=("twitter",),
            multipliers=(1, 4, 10),
            scale=0.15,
            timeout_factor=10.0,
            config=FAST_TASK,
            models={"NV(4,0.25)": Node2VecModel(4.0, 0.25)},
            rng=0,
        )
        table = report.tables[0]
        status = {(row[1], row[2]): row[5] for row in table.rows}
        assert status[("naive", None)] == "timeout"
        assert status[("alias", None)] == "OOM"
        assert status[("rejection", None)] == "ok"
        # Modeled cost of MA falls with the budget multiplier.
        ma_rows = [row for row in table.rows if row[1] == "MA"]
        costs = [row[3] for row in ma_rows]
        assert costs == sorted(costs, reverse=True)


class TestFigure9:
    def test_updates_cheap_and_decrease_cheapest(self):
        report = figure9.run(
            datasets=("blogcatalog",), scale=0.2, models=AUTO_MODEL, rng=0
        )
        table = report.tables[0]
        increases = [r for r in table.rows if r[3] == "increase"]
        decreases = [r for r in table.rows if r[3] == "decrease"]
        assert increases and decreases
        # Decrease never constructs samplers → cheaper than the average
        # increase.
        avg_inc = sum(r[6] for r in increases) / len(increases)
        avg_dec = sum(r[6] for r in decreases) / len(decreases)
        assert avg_dec < avg_inc
        # Optimizer-level work: decreases only revert, increases only apply.
        assert all(r[4] == 0 for r in decreases)
        assert all(r[5] == 0 for r in increases)


class TestAblation:
    def test_shapes(self):
        from repro.experiments import ablation

        report = ablation.run(
            scale=0.15, budget_ratios=(0.1, 0.5), thresholds=(20, 60), rng=0
        )
        quality = report.table(
            "Optimizer quality (time cost vs LMCKP lower bound)"
        )
        for row in quality.rows:
            _, lp, inc, dec, lower, gap = row
            assert lower <= lp + 1e-6
            assert lp <= inc + 1e-6 and lp <= dec + 1e-6
            assert gap is None or gap < 10
        sweep = report.table("Bounding-constant estimation threshold")
        saves = sweep.column("evals saved %")
        assert saves == sorted(saves, reverse=True)  # smaller D_th saves more


class TestValidation:
    def test_checks_pass(self):
        from repro.experiments import validation

        report = validation.run(scale=0.08, samples_per_context=800, rng=0)
        tries = report.table(
            "Rejection sampler: expected vs observed proposal draws"
        )
        for ratio in tries.column("ratio"):
            assert 0.8 < ratio < 1.25
        faithful = report.table("Walk faithfulness by sampler kind")
        for noise in faithful.column("max noise ratio"):
            assert noise < 4.0
        pagerank = report.table("Second-order PageRank: Monte-Carlo vs exact")
        for tv in pagerank.column("TV distance"):
            assert tv < 0.08


class TestCsvExport:
    def test_report_to_csv(self, tmp_path):
        report = run_experiment("table4", scale=0.1, rng=0)
        paths = report.to_csv(tmp_path)
        assert len(paths) == len(report.tables)
        import csv as _csv

        with open(paths[0], newline="") as handle:
            rows = list(_csv.reader(handle))
        assert rows[0] == list(report.tables[0].columns)
        assert len(rows) == len(report.tables[0].rows) + 1

    def test_cli_output_dir(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            ["table4", "--scale", "0.1", "--seed", "0",
             "--output-dir", str(tmp_path)]
        )
        assert code == 0
        assert "CSV file(s) written" in capsys.readouterr().out
        assert list(tmp_path.glob("table4--*.csv"))

    def test_none_cells_become_empty(self, tmp_path):
        from repro.experiments import Report, Table

        report = Report("demo", "d")
        table = report.add_table(Table("t", ["a", "b"]))
        table.add_row(1, None)
        (path,) = report.to_csv(tmp_path)
        assert path.read_text().splitlines()[1] == "1,"


class TestAsciiChart:
    def test_basic_render(self):
        from repro.experiments.reporting import ascii_bar_chart

        chart = ascii_bar_chart(["a", "bb"], [10.0, 20.0], width=10)
        lines = chart.splitlines()
        assert len(lines) == 2
        assert lines[1].count("#") == 10  # the max bar fills the width
        assert lines[0].count("#") == 5

    def test_log_scale(self):
        from repro.experiments.reporting import ascii_bar_chart

        chart = ascii_bar_chart(
            ["x", "y"], [10.0, 1000.0], width=30, log_scale=True
        )
        short, long = (line.count("#") for line in chart.splitlines())
        assert long == 30
        assert short == 10  # log10(10)/log10(1000) = 1/3

    def test_mismatched_lengths(self):
        from repro.experiments.reporting import ascii_bar_chart

        with pytest.raises(ExperimentError):
            ascii_bar_chart(["a"], [1.0, 2.0])

    def test_empty(self):
        from repro.experiments.reporting import ascii_bar_chart

        assert "empty" in ascii_bar_chart([], [])

    def test_minimum_one_hash(self):
        from repro.experiments.reporting import ascii_bar_chart

        chart = ascii_bar_chart(["a", "b"], [0.0001, 100.0], width=20)
        assert all("#" in line for line in chart.splitlines())


class TestCommonFootprints:
    def test_footprint_helpers_consistent_with_cost_table(self):
        import numpy as np

        from repro import CostParams, build_cost_table, Node2VecModel
        from repro.bounding import BoundingConstants
        from repro.experiments.common import (
            alias_footprint,
            naive_footprint,
            rejection_footprint,
        )
        from repro.graph import barabasi_albert_graph

        graph = barabasi_albert_graph(60, 3, rng=0)
        params = CostParams()
        constants = BoundingConstants(values=np.ones(60))
        table = build_cost_table(graph, constants, params)
        assert rejection_footprint(graph.degrees, params) == pytest.approx(
            float(table.memory[:, 1].sum())
        )
        assert alias_footprint(graph.degrees, params) == pytest.approx(
            float(table.memory[:, 2].sum())
        )
        # Naive: the helper reports the single shared buffer, the table
        # amortises it per node — the totals agree.
        assert naive_footprint(graph.degrees, params) == pytest.approx(
            float(table.memory[:, 0].sum())
        )
