"""Unit tests for bounding-constant computation, estimation, and bounds."""

import numpy as np
import pytest

from repro import (
    AutoregressiveModel,
    FirstOrderModel,
    Node2VecModel,
    compute_bounding_constants,
    estimate_bounding_constants,
)
from repro.bounding import (
    BoundingConstants,
    bounding_histogram,
    edge_bounding_constant,
    edge_max_ratio,
    node_bounding_constant,
    theorem1_bound,
    verify_theorem1,
)
from repro.exceptions import BoundingConstantError
from repro.graph import star_graph


class TestEdgeBoundingConstant:
    def test_figure5_values(self, toy_graph):
        """The Figure 5 cost table's C_v column, byte for byte."""
        model = Node2VecModel(a=0.25, b=4.0)
        assert node_bounding_constant(toy_graph, model, 0) == pytest.approx(2.41, abs=0.005)
        assert node_bounding_constant(toy_graph, model, 1) == pytest.approx(1.0)
        assert node_bounding_constant(toy_graph, model, 2) == pytest.approx(1.6)
        assert node_bounding_constant(toy_graph, model, 3) == pytest.approx(1.6)

    def test_first_order_always_one(self, medium_graph):
        constants = compute_bounding_constants(medium_graph, FirstOrderModel())
        assert np.allclose(constants.values, 1.0)

    def test_c_uv_at_least_one(self, medium_graph, nv_model):
        for u, v, _ in list(medium_graph.edges())[:50]:
            assert edge_bounding_constant(medium_graph, nv_model, u, v) >= 1.0 - 1e-12

    def test_c_uv_equals_max_density_ratio(self, toy_graph, nv_model):
        # C_uv must equal max_z P(z)/Q(z) computed from the normalised
        # distributions directly.
        for u, v in [(1, 0), (2, 0), (0, 2)]:
            p = nv_model.e2e_distribution(toy_graph, u, v)
            q = toy_graph.neighbor_weights(v) / toy_graph.weight_sum(v)
            expected = float((p / q).max())
            actual = edge_bounding_constant(toy_graph, nv_model, u, v)
            assert actual == pytest.approx(expected)

    def test_autoregressive_equation6(self, toy_graph):
        # Eq 6: C_uv = max_z((1-α)+α p_uz/p_vz) / ((1-α)+α Σ_l p_ul).
        model = AutoregressiveModel(alpha=0.4)
        u, v = 2, 0
        ratios = model.target_ratios(toy_graph, u, v)
        neighbors = toy_graph.neighbors(v)
        sum_pul = sum(
            toy_graph.edge_weight(u, int(z)) / toy_graph.weight_sum(u)
            for z in neighbors
        )
        expected = ratios.max() / (0.6 + 0.4 * sum_pul)
        assert edge_bounding_constant(toy_graph, model, u, v) == pytest.approx(expected)

    def test_isolated_target_raises(self):
        g = star_graph(3)
        model = Node2VecModel(1.0, 1.0)
        # Build a graph with an isolated node.
        from repro import from_edges

        g2 = from_edges([(0, 1)], num_nodes=3)
        with pytest.raises(BoundingConstantError):
            edge_bounding_constant(g2, model, 0, 2)

    def test_edge_max_ratio_reciprocal_is_acceptance_factor(self, toy_graph, nv_model):
        # factor = 1/max ratio must make all acceptance probabilities <= 1.
        for u, v in [(1, 0), (0, 2)]:
            factor = 1.0 / edge_max_ratio(toy_graph, nv_model, u, v)
            ratios = nv_model.target_ratios(toy_graph, u, v)
            assert np.all(ratios * factor <= 1.0 + 1e-12)


class TestNodeBoundingConstant:
    def test_isolated_node_is_one(self):
        from repro import from_edges

        g = from_edges([(0, 1)], num_nodes=3)
        assert node_bounding_constant(g, Node2VecModel(1, 1), 2) == 1.0

    def test_average_over_neighbors(self, toy_graph, nv_model):
        edges = [
            edge_bounding_constant(toy_graph, nv_model, int(u), 0)
            for u in toy_graph.neighbors(0)
        ]
        assert node_bounding_constant(toy_graph, nv_model, 0) == pytest.approx(
            np.mean(edges)
        )


class TestComputeAll:
    def test_whole_graph(self, toy_graph, nv_model):
        constants = compute_bounding_constants(toy_graph, nv_model)
        assert len(constants) == 4
        assert constants.exact
        assert constants[1] == pytest.approx(1.0)
        assert constants.mean >= 1.0
        assert constants.max >= constants.mean

    def test_rejects_sub_one_values(self):
        with pytest.raises(BoundingConstantError):
            BoundingConstants(values=np.array([0.5, 1.0]))


class TestEstimation:
    def test_exact_below_threshold(self, medium_graph, nv_model):
        exact = compute_bounding_constants(medium_graph, nv_model)
        estimated = estimate_bounding_constants(
            medium_graph, nv_model, degree_threshold=medium_graph.max_degree
        )
        assert estimated.exact
        assert np.allclose(exact.values, estimated.values)

    def test_estimation_marks_nodes(self, medium_graph, nv_model):
        estimated = estimate_bounding_constants(
            medium_graph, nv_model, degree_threshold=10, rng=0
        )
        assert not estimated.exact
        assert estimated.estimated_nodes == int((medium_graph.degrees > 10).sum())
        assert estimated.degree_threshold == 10

    def test_estimates_stay_close(self, medium_graph, nv_model):
        exact = compute_bounding_constants(medium_graph, nv_model)
        estimated = estimate_bounding_constants(
            medium_graph, nv_model, degree_threshold=15, rng=0
        )
        # Estimated C_v never exceeds exact (a sampled max is a lower
        # bound) and stays within a modest relative error on average.
        assert np.all(estimated.values <= exact.values + 1e-9)
        rel_err = np.abs(estimated.values - exact.values) / exact.values
        assert rel_err.mean() < 0.25

    def test_estimates_at_least_one(self, medium_graph, auto_model):
        estimated = estimate_bounding_constants(
            medium_graph, auto_model, degree_threshold=5, rng=0
        )
        assert np.all(estimated.values >= 1.0 - 1e-12)

    def test_invalid_threshold(self, medium_graph, nv_model):
        with pytest.raises(BoundingConstantError):
            estimate_bounding_constants(medium_graph, nv_model, degree_threshold=0)

    def test_deterministic_given_seed(self, medium_graph, nv_model):
        a = estimate_bounding_constants(medium_graph, nv_model, degree_threshold=10, rng=42)
        b = estimate_bounding_constants(medium_graph, nv_model, degree_threshold=10, rng=42)
        assert np.allclose(a.values, b.values)


class TestTheorem1:
    @pytest.mark.parametrize(
        "a,b",
        [(4.0, 4.0), (0.25, 4.0), (4.0, 0.25), (0.25, 0.25), (1.0, 1.0)],
    )
    def test_node2vec_bound_holds(self, medium_graph, a, b):
        model = Node2VecModel(a=a, b=b)
        assert verify_theorem1(medium_graph, model) == []

    @pytest.mark.parametrize("alpha", [0.0, 0.2, 0.8])
    def test_autoregressive_bound_holds(self, medium_graph, alpha):
        model = AutoregressiveModel(alpha=alpha)
        assert verify_theorem1(medium_graph, model) == []

    def test_autoregressive_theta_zero_equals_one(self, path_graph):
        # Path 0-1-2-3: θ = 0 on every edge, so C_uv = 1 exactly.
        model = AutoregressiveModel(alpha=0.5)
        assert edge_bounding_constant(path_graph, model, 0, 1) == pytest.approx(1.0)
        assert theorem1_bound(path_graph, model, 0, 1) == 1.0

    def test_requires_unweighted(self, weighted_graph, nv_model):
        with pytest.raises(BoundingConstantError, match="unweighted"):
            theorem1_bound(weighted_graph, nv_model, 0, 1)

    def test_unknown_model_rejected(self, toy_graph):
        with pytest.raises(BoundingConstantError, match="no Theorem 1"):
            theorem1_bound(toy_graph, FirstOrderModel(), 0, 1)

    def test_case3_degenerate(self, path_graph):
        # Degree-1 endpoint: d_v - 1 - θ = 0 → bound falls back to d_v.
        model = Node2VecModel(a=4.0, b=0.25)
        assert theorem1_bound(path_graph, model, 1, 0) == 1.0  # d_v = 1


class TestHistogram:
    def test_bucket_structure(self, medium_graph, nv_model):
        constants = compute_bounding_constants(medium_graph, nv_model)
        hist = bounding_histogram(constants)
        assert hist.buckets == 10
        assert hist.total == medium_graph.num_nodes
        assert len(hist.edges) == 11

    def test_shared_edges(self, medium_graph, nv_model):
        constants = compute_bounding_constants(medium_graph, nv_model)
        base = bounding_histogram(constants)
        other = bounding_histogram(constants, edges=base.edges)
        assert np.array_equal(base.counts, other.counts)

    def test_fraction_below(self):
        constants = BoundingConstants(values=np.array([1.0, 2.0, 3.0, 10.0]))
        hist = bounding_histogram(constants, buckets=9)
        assert hist.fraction_below(11.0) == pytest.approx(1.0)
        assert 0.4 < hist.fraction_below(4.0) < 0.9

    def test_degenerate_all_equal(self):
        constants = BoundingConstants(values=np.ones(5))
        hist = bounding_histogram(constants)
        assert hist.total == 5

    def test_rows(self, medium_graph, nv_model):
        constants = compute_bounding_constants(medium_graph, nv_model)
        hist = bounding_histogram(constants)
        rows = hist.rows()
        assert len(rows) == 10
        assert sum(count for _, _, count in rows) == hist.total

    def test_invalid_buckets(self):
        constants = BoundingConstants(values=np.ones(3))
        with pytest.raises(BoundingConstantError):
            bounding_histogram(constants, buckets=0)

    def test_invalid_edges(self):
        constants = BoundingConstants(values=np.ones(3))
        with pytest.raises(BoundingConstantError):
            bounding_histogram(constants, edges=np.array([2.0, 1.0]))
