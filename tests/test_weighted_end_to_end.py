"""End-to-end tests on weighted graphs.

Most of the suite uses unweighted graphs (like the paper's datasets);
these tests certify that nothing silently assumes unit weights: the
framework, all samplers, the optimizer, and the PageRank estimator must
work — and agree with exact computations — on arbitrarily weighted graphs.
"""

import numpy as np
import pytest

from repro import (
    AutoregressiveModel,
    MemoryAwareFramework,
    Node2VecModel,
    SamplerKind,
    WalkCorpus,
    from_edges,
    second_order_pagerank,
)
from repro.analysis import diagnose_walks
from repro.rng import ensure_rng
from repro.sampling.utils import total_variation_distance
from repro.walks import exact_second_order_pagerank
from repro.walks.batch import batch_walks


@pytest.fixture(scope="module")
def weighted_community_graph():
    """A weighted graph with strong/weak ties and skewed weights."""
    gen = ensure_rng(17)
    edges = []
    weights = []
    n = 40
    for i in range(n):
        for j in range(i + 1, n):
            same = (i < n // 2) == (j < n // 2)
            p = 0.3 if same else 0.05
            if gen.random() < p:
                edges.append((i, j))
                weights.append(float(gen.uniform(0.1, 5.0)))
    return from_edges(edges, weights, num_nodes=n)


class TestWeightedFramework:
    @pytest.mark.parametrize(
        "model",
        [Node2VecModel(0.25, 4.0), AutoregressiveModel(0.6)],
        ids=["node2vec", "auto"],
    )
    def test_framework_walks_faithful(self, weighted_community_graph, model):
        graph = weighted_community_graph
        probe = MemoryAwareFramework(graph, model, budget=1e12, rng=0)
        budget = 0.25 * probe.cost_table.max_memory()
        fw = MemoryAwareFramework(graph, model, budget=budget, rng=0)
        corpus = WalkCorpus.from_walks(
            fw.generate_walks(num_walks=40, length=15, rng=1)
        )
        diagnostics = diagnose_walks(graph, model, corpus, min_samples=150)
        assert diagnostics.contexts_checked > 0
        assert diagnostics.is_faithful(max_noise_units=3.5)

    def test_all_memory_unaware_agree(self, weighted_community_graph):
        graph = weighted_community_graph
        model = Node2VecModel(0.5, 2.0)
        for kind in SamplerKind:
            fw = MemoryAwareFramework.memory_unaware(graph, model, kind, rng=0)
            corpus = WalkCorpus.from_walks(
                fw.generate_walks(num_walks=50, length=12, rng=2)
            )
            diagnostics = diagnose_walks(graph, model, corpus, min_samples=80)
            assert diagnostics.is_faithful(max_noise_units=3.5), kind

    def test_batch_engine_weighted(self, weighted_community_graph):
        graph = weighted_community_graph
        model = Node2VecModel(0.5, 2.0)
        corpus = batch_walks(graph, model, num_walks=40, length=15, rng=3)
        diagnostics = diagnose_walks(graph, model, corpus, min_samples=150)
        assert diagnostics.is_faithful(max_noise_units=3.5)

    def test_pagerank_mc_matches_exact(self, weighted_community_graph):
        graph = weighted_community_graph
        model = AutoregressiveModel(0.4)
        query = int(graph.degrees.argmax())
        exact = exact_second_order_pagerank(
            graph, model, query, decay=0.8, max_length=6
        )
        fw = MemoryAwareFramework.memory_unaware(
            graph, model, SamplerKind.ALIAS, rng=0
        )
        estimate = second_order_pagerank(
            fw.walk_engine, query, decay=0.8, max_length=6,
            num_samples=6000, rng=4,
        )
        assert total_variation_distance(
            estimate.scores + 1e-15, exact + 1e-15
        ) < 0.05

    def test_optimizer_budget_respected(self, weighted_community_graph):
        graph = weighted_community_graph
        model = Node2VecModel(0.25, 4.0)
        probe = MemoryAwareFramework(graph, model, budget=1e12, rng=0)
        for ratio in (0.1, 0.4, 0.8):
            budget = ratio * probe.cost_table.max_memory()
            fw = MemoryAwareFramework(
                graph, model, budget=budget,
                bounding_constants=probe.bounding_constants, rng=0,
            )
            assert fw.assignment.used_memory <= budget

    def test_heavy_weight_dominates_transitions(self):
        """A 100x heavier edge must dominate the e2e distribution."""
        g = from_edges(
            [(0, 1), (1, 2), (1, 3)], weights=[1.0, 100.0, 1.0]
        )
        model = Node2VecModel(1.0, 1.0)
        fw = MemoryAwareFramework.memory_unaware(
            g, model, SamplerKind.ALIAS, rng=0
        )
        gen = np.random.default_rng(5)
        nexts = [fw.walk_engine.samplers[1].sample(0, gen) for _ in range(500)]
        share_of_2 = nexts.count(2) / len(nexts)
        assert share_of_2 > 0.9
