"""Tests for the weighted-graph bounding-constant extension."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import AutoregressiveModel, FirstOrderModel, Node2VecModel, from_edges
from repro.bounding import (
    edge_bounding_constant,
    verify_weighted_bound,
    weighted_bound,
)
from repro.exceptions import BoundingConstantError
from repro.models import EdgeSimilarityModel

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def weighted_graph_strategy(draw):
    n = draw(st.integers(min_value=3, max_value=10))
    edges = [(i, i + 1) for i in range(n - 1)]
    extra = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=10,
        )
    )
    edges.extend((u, v) for u, v in extra if u != v)
    weights = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=10.0),
            min_size=len(edges),
            max_size=len(edges),
        )
    )
    return from_edges(edges, weights, num_nodes=n)


class TestNode2VecWeightedBound:
    def test_closed_form(self, weighted_graph):
        model = Node2VecModel(0.25, 4.0)
        # max_r = 4, min_r = 0.25 -> bound 16 on every edge.
        assert weighted_bound(weighted_graph, model, 0, 1) == pytest.approx(16.0)

    @given(graph=weighted_graph_strategy())
    @SETTINGS
    def test_bound_holds_on_weighted_graphs(self, graph):
        model = Node2VecModel(0.25, 4.0)
        assert verify_weighted_bound(graph, model) == []

    @given(
        graph=weighted_graph_strategy(),
        a=st.sampled_from([0.25, 1.0, 4.0]),
        b=st.sampled_from([0.25, 1.0, 4.0]),
    )
    @SETTINGS
    def test_bound_holds_all_parameters(self, graph, a, b):
        model = Node2VecModel(a, b)
        assert verify_weighted_bound(graph, model) == []


class TestAutoregressiveWeightedBound:
    @given(graph=weighted_graph_strategy(), alpha=st.sampled_from([0.0, 0.3, 0.8]))
    @SETTINGS
    def test_bound_holds(self, graph, alpha):
        model = AutoregressiveModel(alpha)
        assert verify_weighted_bound(graph, model) == []

    def test_alpha_zero_is_one(self, weighted_graph):
        model = AutoregressiveModel(0.0)
        assert weighted_bound(weighted_graph, model, 0, 1) == 1.0


class TestGenericFallback:
    def test_edge_similarity_bound(self, medium_graph):
        model = EdgeSimilarityModel(gamma=0.5)
        violations = [
            (u, v)
            for u, v, _ in list(medium_graph.edges())[:40]
            if edge_bounding_constant(medium_graph, model, u, v)
            > weighted_bound(medium_graph, model, u, v) + 1e-9
        ]
        assert violations == []

    def test_first_order_bound_is_one(self, weighted_graph):
        assert weighted_bound(weighted_graph, FirstOrderModel(), 0, 1) == pytest.approx(1.0)

    def test_isolated_node_rejected(self):
        g = from_edges([(0, 1)], num_nodes=3)
        with pytest.raises(BoundingConstantError):
            weighted_bound(g, Node2VecModel(1, 1), 0, 2)


class TestBoundQuality:
    def test_weighted_bound_can_be_tighter_than_degree(self, rng):
        """On a high-degree unweighted star with few common neighbours, the
        ratio bound (16) beats the Theorem 1 degree bound (d_v)."""
        from repro.graph import star_graph

        g = star_graph(50)
        model = Node2VecModel(0.25, 4.0)
        leaf = 1
        actual = edge_bounding_constant(g, model, leaf, 0)
        weighted = weighted_bound(g, model, leaf, 0)
        assert actual <= weighted <= 16.0 < g.degree(0)
