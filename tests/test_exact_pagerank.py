"""Tests for the exact edge-state PageRank and its agreement with the
Monte-Carlo estimator."""

import numpy as np
import pytest

from repro import (
    AutoregressiveModel,
    FirstOrderModel,
    MemoryAwareFramework,
    Node2VecModel,
    second_order_pagerank,
)
from repro.exceptions import WalkError
from repro.graph import cycle_graph, from_edges, powerlaw_cluster_graph
from repro.sampling.utils import total_variation_distance
from repro.walks import exact_second_order_pagerank


class TestExactComputation:
    def test_scores_normalised(self, toy_graph, nv_model):
        scores = exact_second_order_pagerank(toy_graph, nv_model, 0)
        assert scores.sum() == pytest.approx(1.0)
        assert np.all(scores >= 0)

    def test_zero_length_is_delta(self, toy_graph, nv_model):
        scores = exact_second_order_pagerank(
            toy_graph, nv_model, 2, max_length=0
        )
        assert scores[2] == 1.0

    def test_zero_decay_is_delta(self, toy_graph, nv_model):
        scores = exact_second_order_pagerank(toy_graph, nv_model, 2, decay=0.0)
        assert scores[2] == 1.0

    def test_isolated_query(self, nv_model):
        g = from_edges([(0, 1)], num_nodes=3)
        scores = exact_second_order_pagerank(g, nv_model, 2)
        assert scores[2] == 1.0

    def test_invalid_query(self, toy_graph, nv_model):
        with pytest.raises(WalkError):
            exact_second_order_pagerank(toy_graph, nv_model, 99)

    def test_invalid_decay(self, toy_graph, nv_model):
        with pytest.raises(WalkError):
            exact_second_order_pagerank(toy_graph, nv_model, 0, decay=2.0)

    def test_cycle_symmetry(self):
        """On a cycle with a symmetric model, the two direct neighbours of
        the query get equal mass."""
        g = cycle_graph(8)
        scores = exact_second_order_pagerank(g, FirstOrderModel(), 0, max_length=6)
        assert scores[1] == pytest.approx(scores[7])
        assert scores[2] == pytest.approx(scores[6])

    def test_one_step_matches_n2e(self, weighted_graph, nv_model):
        """With L=1, scores are the mixture of the start delta and the n2e
        distribution — independent of the second-order parameters."""
        decay = 0.7
        scores = exact_second_order_pagerank(
            weighted_graph, nv_model, 2, decay=decay, max_length=1
        )
        n2e = weighted_graph.neighbor_weights(2) / weighted_graph.weight_sum(2)
        expected = np.zeros(weighted_graph.num_nodes)
        expected[2] += 1.0
        expected[weighted_graph.neighbors(2)] += decay * n2e
        expected /= expected.sum()
        assert np.allclose(scores, expected)

    def test_query_dominates(self, medium_graph, nv_model):
        scores = exact_second_order_pagerank(medium_graph, nv_model, 10)
        assert scores[10] == scores.max()


class TestMonteCarloAgreement:
    @pytest.mark.parametrize(
        "model",
        [Node2VecModel(0.25, 4.0), AutoregressiveModel(0.5), FirstOrderModel()],
        ids=["node2vec", "auto", "first-order"],
    )
    def test_estimator_converges_to_exact(self, model):
        graph = powerlaw_cluster_graph(40, 3, 0.5, rng=3)
        query = int(graph.degrees.argmax())
        exact = exact_second_order_pagerank(
            graph, model, query, decay=0.8, max_length=8
        )
        fw = MemoryAwareFramework.memory_unaware(
            graph, model, kind=__import__("repro").SamplerKind.ALIAS, rng=0
        )
        estimate = second_order_pagerank(
            fw.walk_engine, query,
            decay=0.8, max_length=8, num_samples=8000, rng=1,
        )
        assert total_variation_distance(estimate.scores + 1e-15, exact + 1e-15) < 0.05
