"""Unit and statistical tests for the per-node samplers.

The central correctness property: all three node samplers draw from the
SAME e2e distribution — the model's exact ``p(z | v, u)``.
"""

import numpy as np
import pytest

from repro import (
    AutoregressiveModel,
    CostParams,
    FirstOrderModel,
    Node2VecModel,
    SamplerKind,
)
from repro.exceptions import SamplerError, WalkError
from repro.framework import (
    AliasNodeSampler,
    NaiveNodeSampler,
    RejectionNodeSampler,
    build_node_sampler,
)
from repro.sampling.utils import empirical_distribution, total_variation_distance

PARAMS = CostParams()


def empirical_e2e(sampler, graph, u, v, rng, n=8000):
    samples = np.array([sampler.sample(u, rng) for _ in range(n)])
    # Map sampled node ids onto neighbour positions.
    neighbors = graph.neighbors(v)
    positions = np.searchsorted(neighbors, samples)
    return empirical_distribution(positions, len(neighbors))


@pytest.mark.parametrize("kind", list(SamplerKind))
class TestDistributionAgreement:
    @pytest.mark.parametrize(
        "model",
        [
            Node2VecModel(0.25, 4.0),
            Node2VecModel(4.0, 0.25),
            AutoregressiveModel(0.2),
            AutoregressiveModel(0.8),
            FirstOrderModel(),
        ],
        ids=["NV(0.25,4)", "NV(4,0.25)", "Auto(0.2)", "Auto(0.8)", "first-order"],
    )
    def test_matches_exact_e2e(self, kind, model, toy_graph, rng):
        for u, v in [(1, 0), (2, 0), (0, 2), (0, 3)]:
            sampler = build_node_sampler(kind, toy_graph, model, v)
            exact = model.e2e_distribution(toy_graph, u, v)
            emp = empirical_e2e(sampler, toy_graph, u, v, rng)
            assert total_variation_distance(emp, exact) < 0.05

    def test_weighted_graph(self, kind, weighted_graph, rng):
        model = Node2VecModel(0.5, 2.0)
        u, v = 0, 2
        sampler = build_node_sampler(kind, weighted_graph, model, v)
        exact = model.e2e_distribution(weighted_graph, u, v)
        emp = empirical_e2e(sampler, weighted_graph, u, v, rng)
        assert total_variation_distance(emp, exact) < 0.05

    def test_sample_first_matches_n2e(self, kind, weighted_graph, rng):
        v = 2
        model = Node2VecModel(0.25, 4.0)
        sampler = build_node_sampler(kind, weighted_graph, model, v)
        samples = np.array([sampler.sample_first(rng) for _ in range(8000)])
        neighbors = weighted_graph.neighbors(v)
        positions = np.searchsorted(neighbors, samples)
        emp = empirical_distribution(positions, len(neighbors))
        exact = weighted_graph.neighbor_weights(v) / weighted_graph.weight_sum(v)
        assert total_variation_distance(emp, exact) < 0.05


class TestNaiveNodeSampler:
    def test_costs_match_table1(self, toy_graph, nv_model):
        sampler = NaiveNodeSampler(toy_graph, nv_model, 0)
        assert sampler.memory_cost(PARAMS) == pytest.approx(4 * 3 / 4)
        c = np.log2(3)
        assert sampler.time_cost(PARAMS) == pytest.approx(3 * (c + 1))

    def test_degree_zero_raises_on_sample(self, rng):
        from repro import from_edges

        g = from_edges([(0, 1)], num_nodes=3)
        sampler = NaiveNodeSampler(g, Node2VecModel(1, 1), 2)
        with pytest.raises(WalkError):
            sampler.sample_first(rng)


class TestRejectionNodeSampler:
    def test_uses_global_factor_for_node2vec(self, toy_graph, nv_model):
        sampler = RejectionNodeSampler(toy_graph, nv_model, 0)
        assert sampler._global_factor == pytest.approx(1.0 / 4.0)

    def test_uses_exact_factors_for_autoregressive(self, toy_graph, auto_model):
        sampler = RejectionNodeSampler(toy_graph, auto_model, 0)
        assert sampler._global_factor is None
        assert len(sampler._factors) == 3

    def test_explicit_factors(self, toy_graph, nv_model, rng):
        factors = np.full(3, 0.1)  # conservative → still correct, slower
        sampler = RejectionNodeSampler(toy_graph, nv_model, 0, factors=factors)
        exact = nv_model.e2e_distribution(toy_graph, 1, 0)
        emp = empirical_e2e(sampler, toy_graph, 1, 0, rng)
        assert total_variation_distance(emp, exact) < 0.05

    def test_factor_length_mismatch(self, toy_graph, nv_model):
        with pytest.raises(SamplerError):
            RejectionNodeSampler(toy_graph, nv_model, 0, factors=np.ones(2))

    def test_empirical_tries_bounded_by_cuv(self, toy_graph, nv_model, rng):
        from repro.bounding import edge_bounding_constant

        sampler = RejectionNodeSampler(toy_graph, nv_model, 0)
        for _ in range(3000):
            sampler.sample(1, rng)
        # With the conservative global factor the expected tries are
        # C_uv * (per-edge max / global bound)⁻¹ >= C_uv; sanity: finite
        # and within 4x the exact C_uv.
        c_uv = edge_bounding_constant(toy_graph, nv_model, 1, 0)
        assert 0.9 * c_uv <= sampler.empirical_tries < 4 * c_uv

    def test_exact_factor_tries_converge_to_cuv(self, toy_graph, auto_model, rng):
        from repro.bounding import edge_bounding_constant

        sampler = RejectionNodeSampler(toy_graph, auto_model, 0)
        for _ in range(4000):
            sampler.sample(2, rng)
        c_uv = edge_bounding_constant(toy_graph, auto_model, 2, 0)
        assert sampler.empirical_tries == pytest.approx(c_uv, rel=0.15)

    def test_previous_outside_neighborhood_falls_back(self, rng):
        # Graph where 3 is not adjacent to 0 but a restart could make it
        # the "previous" node.
        from repro import from_edges

        g = from_edges([(0, 1), (0, 2), (1, 3), (2, 3)])
        model = AutoregressiveModel(0.4)
        sampler = RejectionNodeSampler(g, model, 0)
        sample = sampler.sample(3, rng)
        assert sample in (1, 2)

    def test_costs_match_table1(self, toy_graph, nv_model):
        sampler = RejectionNodeSampler(toy_graph, nv_model, 0)
        assert sampler.memory_cost(PARAMS) == (2 * 4 + 4) * 3

    def test_max_tries_guard(self, toy_graph, nv_model, rng):
        sampler = RejectionNodeSampler(
            toy_graph, nv_model, 0, factors=np.full(3, 1e-15), max_tries=5
        )
        with pytest.raises(SamplerError, match="exceeded"):
            sampler.sample(1, rng)


class TestAliasNodeSampler:
    def test_one_table_per_incoming_edge(self, toy_graph, nv_model):
        sampler = AliasNodeSampler(toy_graph, nv_model, 0)
        assert len(sampler._tables) == 3

    def test_costs_match_table1(self, toy_graph, nv_model):
        sampler = AliasNodeSampler(toy_graph, nv_model, 0)
        assert sampler.memory_cost(PARAMS) == (4 + 4) * (9 + 3)
        assert sampler.time_cost(PARAMS) == 1.0

    def test_previous_outside_neighborhood_builds_on_demand(self, rng):
        # Directed traces (and restarts) can make the previous node an
        # in-neighbour outside N(v); the sampler builds and caches an extra
        # table instead of failing.
        from repro import from_edges

        g = from_edges([(0, 1), (0, 2), (1, 3), (2, 3)])
        sampler = AliasNodeSampler(g, Node2VecModel(1, 1), 0)
        sample = sampler.sample(3, rng)
        assert sample in (1, 2)
        assert 3 in sampler._extra_tables
        sampler.sample(3, rng)  # second draw reuses the cached table
        assert len(sampler._extra_tables) == 1


class TestFactory:
    def test_builds_each_kind(self, toy_graph, nv_model):
        assert isinstance(
            build_node_sampler(SamplerKind.NAIVE, toy_graph, nv_model, 0),
            NaiveNodeSampler,
        )
        assert isinstance(
            build_node_sampler(SamplerKind.REJECTION, toy_graph, nv_model, 0),
            RejectionNodeSampler,
        )
        assert isinstance(
            build_node_sampler(SamplerKind.ALIAS, toy_graph, nv_model, 0),
            AliasNodeSampler,
        )

    def test_out_of_range_node(self, toy_graph, nv_model):
        with pytest.raises(WalkError):
            build_node_sampler(SamplerKind.NAIVE, toy_graph, nv_model, 99)
