"""Property-based tests for the optimizer on random problem instances."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    CostParams,
    build_cost_table,
    degree_greedy,
    dp_optimal,
    exhaustive_optimal,
    lp_greedy,
)
from repro.bounding import BoundingConstants, compute_bounding_constants
from repro.graph import from_edges
from repro.models import Node2VecModel
from repro.optimizer import AdaptiveOptimizer, eliminate_dominated
from repro.optimizer.lp_greedy import lmckp_lower_bound

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def random_graph(draw):
    """A connected-ish random undirected graph with 4..10 nodes."""
    n = draw(st.integers(min_value=4, max_value=10))
    # A random spanning chain keeps every node non-isolated.
    extra = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=12,
        )
    )
    edges = [(i, i + 1) for i in range(n - 1)]
    edges.extend((u, v) for u, v in extra if u != v)
    return from_edges(edges, num_nodes=n)


@st.composite
def cost_instance(draw):
    graph = draw(random_graph())
    model = Node2VecModel(
        a=draw(st.sampled_from([0.25, 1.0, 4.0])),
        b=draw(st.sampled_from([0.25, 1.0, 4.0])),
    )
    constants = compute_bounding_constants(graph, model)
    table = build_cost_table(
        graph, constants, CostParams(fixed_check_cost=1.0)
    )
    ratio = draw(st.floats(min_value=0.0, max_value=1.0))
    budget = table.min_memory() + ratio * (table.max_memory() - table.min_memory())
    return graph, table, budget


class TestLpGreedyProperties:
    @given(instance=cost_instance())
    @SETTINGS
    def test_never_exceeds_budget(self, instance):
        _, table, budget = instance
        assignment = lp_greedy(table, budget)
        assert assignment.used_memory <= budget + 1e-9

    @given(instance=cost_instance())
    @SETTINGS
    def test_sandwiched_by_bounds(self, instance):
        """lower(LP) <= OPT <= greedy <= Theorem-4 factor * OPT."""
        graph, table, budget = instance
        lower = lmckp_lower_bound(table, budget)
        optimal = exhaustive_optimal(table, budget).total_time
        greedy = lp_greedy(table, budget).total_time
        assert lower <= optimal + 1e-6
        assert optimal <= greedy + 1e-6
        c = 1.0
        factor = max((c + 1) / c, c) * graph.max_degree
        assert greedy <= factor * optimal + 1e-6

    @given(instance=cost_instance())
    @SETTINGS
    def test_no_worse_than_all_naive(self, instance):
        _, table, budget = instance
        greedy = lp_greedy(table, budget)
        all_naive_time = float(table.time[:, 0].sum())
        assert greedy.total_time <= all_naive_time + 1e-9

    @given(instance=cost_instance())
    @SETTINGS
    def test_beats_or_ties_degree_greedy(self, instance):
        graph, table, budget = instance
        lp = lp_greedy(table, budget).total_time
        inc = degree_greedy(table, budget, graph.degrees, increasing=True).total_time
        dec = degree_greedy(table, budget, graph.degrees, increasing=False).total_time
        # LP greedy is not provably dominant pointwise, but it should never
        # lose by more than the value of a single node's best upgrade;
        # empirically on these instances it wins or ties.
        assert lp <= min(inc, dec) * 1.5 + 1e-9


class TestDpProperties:
    @given(instance=cost_instance())
    @SETTINGS
    def test_dp_matches_exhaustive(self, instance):
        _, table, budget = instance
        # Fine resolution: the naive column has fractional byte weights and
        # the DP rounds them up, so a coarse grid can make tight budgets
        # infeasible.  Even at 0.01 B the rounded feasible set is a subset
        # of the true one, so the DP can only ever be equal or worse.
        dp = dp_optimal(table, budget, resolution=0.01)
        brute = exhaustive_optimal(table, budget)
        assert dp.total_time >= brute.total_time - 1e-6
        assert dp.total_time <= brute.total_time * 1.05 + 1e-6


class TestAdaptiveProperties:
    @given(
        instance=cost_instance(),
        ratios=st.lists(
            st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=6
        ),
    )
    @SETTINGS
    def test_any_budget_walk_matches_from_scratch(self, instance, ratios):
        """After ANY sequence of budget changes, the adaptive assignment is
        identical to running Algorithm 2 from scratch (the §5.3 invariant)."""
        _, table, _ = instance
        low, high = table.min_memory(), table.max_memory()
        budgets = [low + r * (high - low) for r in ratios]
        adaptive = AdaptiveOptimizer(table, budgets[0])
        for budget in budgets[1:]:
            adaptive.set_budget(budget)
            reference = lp_greedy(table, budget)
            assert np.array_equal(adaptive.assignment.samplers, reference.samplers)


class TestDominanceProperties:
    @given(
        memory=st.lists(
            st.floats(min_value=1, max_value=1e6), min_size=1, max_size=8
        ),
        time=st.lists(
            st.floats(min_value=1, max_value=1e6), min_size=1, max_size=8
        ),
    )
    @SETTINGS
    def test_chain_is_convex_and_monotone(self, memory, time):
        k = min(len(memory), len(time))
        memory_arr = np.asarray(memory[:k])
        time_arr = np.asarray(time[:k])
        kept = eliminate_dominated(memory_arr, time_arr)
        assert kept  # never empty
        mems = memory_arr[kept]
        times = time_arr[kept]
        # Strictly increasing memory, strictly decreasing time.
        assert np.all(np.diff(mems) > 0)
        assert np.all(np.diff(times) < 0) or len(kept) == 1
        # Gradients non-decreasing (convex lower boundary).
        if len(kept) >= 3:
            grads = np.diff(times) / np.diff(mems)
            assert np.all(np.diff(grads) >= -1e-12)
