"""Unit tests for graph statistics."""

import pytest

from repro import CSRGraph
from repro.graph import compute_stats, triangle_count
from repro.graph.stats import (
    common_neighbor_count,
    common_neighbors,
    degree_histogram,
    local_clustering_coefficient,
)
from repro.graph.generators import complete_graph, cycle_graph, star_graph


class TestStats:
    def test_compute_stats(self, toy_graph):
        stats = compute_stats(toy_graph)
        assert stats.num_nodes == 4
        assert stats.num_edges == 8
        assert stats.max_degree == 3
        assert stats.min_degree == 1
        assert stats.average_degree == pytest.approx(2.0)
        assert stats.triangles is None

    def test_compute_stats_with_triangles(self, toy_graph):
        stats = compute_stats(toy_graph, with_triangles=True)
        assert stats.triangles == 1

    def test_describe(self, toy_graph):
        text = compute_stats(toy_graph).describe()
        assert "|V|=4" in text and "d_max=3" in text


class TestTriangles:
    def test_triangle_graph(self, triangle_graph):
        assert triangle_count(triangle_graph) == 1

    def test_complete_graph(self):
        # K5 has C(5,3) = 10 triangles.
        assert triangle_count(complete_graph(5)) == 10

    def test_cycle_has_none(self):
        assert triangle_count(cycle_graph(6)) == 0

    def test_star_has_none(self):
        assert triangle_count(star_graph(6)) == 0

    def test_toy_graph(self, toy_graph):
        assert triangle_count(toy_graph) == 1

    def test_matches_networkx(self, medium_graph):
        nx = pytest.importorskip("networkx")
        g = nx.Graph()
        g.add_nodes_from(range(medium_graph.num_nodes))
        for u, v, _ in medium_graph.edges():
            if u < v:
                g.add_edge(u, v)
        expected = sum(nx.triangles(g).values()) // 3
        assert triangle_count(medium_graph) == expected


class TestCommonNeighbors:
    def test_counts(self, toy_graph):
        # N(2) = {0, 3}, N(3) = {0, 2} -> common = {0}.
        assert common_neighbor_count(toy_graph, 2, 3) == 1
        assert common_neighbor_count(toy_graph, 0, 1) == 0

    def test_common_neighbors_values(self, toy_graph):
        assert list(common_neighbors(toy_graph, 2, 3)) == [0]

    def test_isolated_node(self):
        g = CSRGraph.from_edges([(0, 1)], num_nodes=3)
        assert common_neighbor_count(g, 0, 2) == 0


class TestClustering:
    def test_triangle_node(self, triangle_graph):
        assert local_clustering_coefficient(triangle_graph, 0) == pytest.approx(1.0)

    def test_star_center(self):
        assert local_clustering_coefficient(star_graph(5), 0) == 0.0

    def test_leaf(self, path_graph):
        assert local_clustering_coefficient(path_graph, 0) == 0.0


class TestDegreeHistogram:
    def test_toy(self, toy_graph):
        hist = degree_histogram(toy_graph)
        assert hist[1] == 1  # node 1
        assert hist[2] == 2  # nodes 2, 3
        assert hist[3] == 1  # node 0

    def test_empty(self):
        hist = degree_histogram(CSRGraph.from_edges([], num_nodes=0))
        assert len(hist) == 1
