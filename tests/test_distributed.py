"""Tests for the inverse optimizer and the partitioned framework."""

import numpy as np
import pytest

from repro import (
    CostParams,
    Node2VecModel,
    build_cost_table,
    compute_bounding_constants,
    lp_greedy,
)
from repro.distributed import (
    PartitionedFramework,
    degree_balanced_partition,
    hash_partition,
)
from repro.exceptions import OptimizerError
from repro.optimizer.inverse import min_memory_for_time


@pytest.fixture(scope="module")
def setup(medium_graph):
    model = Node2VecModel(0.25, 4.0)
    constants = compute_bounding_constants(medium_graph, model)
    table = build_cost_table(medium_graph, constants, CostParams())
    return medium_graph, model, constants, table


class TestInverseOptimizer:
    def test_meets_target(self, setup):
        _, _, _, table = setup
        all_naive = float(table.time[:, 0].sum())
        saturated = lp_greedy(table, table.max_memory()).total_time
        target = (all_naive + saturated) / 2
        assignment = min_memory_for_time(table, target)
        assert assignment.total_time <= target

    def test_minimal_among_schedule_prefixes(self, setup):
        """The result's memory equals the forward LP greedy run at the same
        budget — the two solvers are duals on the same schedule."""
        _, _, _, table = setup
        target = 0.5 * float(table.time[:, 0].sum())
        inverse = min_memory_for_time(table, target)
        forward = lp_greedy(table, inverse.used_memory)
        assert forward.total_time == pytest.approx(inverse.total_time)
        assert forward.used_memory == pytest.approx(inverse.used_memory)

    def test_loose_target_needs_minimum_memory(self, setup):
        _, _, _, table = setup
        loose = 10 * float(table.time[:, 0].sum())
        assignment = min_memory_for_time(table, loose)
        assert assignment.used_memory == pytest.approx(table.min_memory())

    def test_impossible_target(self, setup):
        _, _, _, table = setup
        with pytest.raises(OptimizerError, match="saturated"):
            min_memory_for_time(table, 0.0)

    def test_memory_monotone_in_target(self, setup):
        _, _, _, table = setup
        all_naive = float(table.time[:, 0].sum())
        memories = [
            min_memory_for_time(table, fraction * all_naive).used_memory
            for fraction in (0.8, 0.4, 0.2, 0.1)
        ]
        assert memories == sorted(memories)  # tighter target -> more memory


class TestPartitions:
    def test_hash_partition(self):
        partition = hash_partition(10, 3)
        assert len(partition) == 10
        assert set(partition) == {0, 1, 2}

    def test_degree_balanced_loads(self, medium_graph):
        partition = degree_balanced_partition(medium_graph.degrees, 4)
        loads = [
            medium_graph.degrees[partition == w].sum() for w in range(4)
        ]
        assert max(loads) < 1.5 * min(loads)

    def test_invalid_workers(self):
        with pytest.raises(OptimizerError):
            hash_partition(5, 0)
        with pytest.raises(OptimizerError):
            degree_balanced_partition(np.array([1, 2]), 0)


class TestPartitionedFramework:
    def test_per_worker_budgets_respected(self, setup):
        graph, model, constants, table = setup
        partition = degree_balanced_partition(graph.degrees, 3)
        per_worker = 0.15 * table.max_memory() / 3
        fw = PartitionedFramework(
            graph, model, partition, [per_worker] * 3,
            bounding_constants=constants, rng=0,
        )
        assert fw.num_workers == 3
        for stats in fw.worker_stats():
            assert stats.used_memory <= stats.budget

    def test_walks_cross_partitions(self, setup):
        graph, model, constants, table = setup
        partition = hash_partition(graph.num_nodes, 4)
        budget = 0.2 * table.max_memory() / 4
        fw = PartitionedFramework(
            graph, model, partition, [budget] * 4,
            bounding_constants=constants, rng=0,
        )
        walk = fw.walk(0, 40, rng=1)
        visited_workers = {int(partition[v]) for v in walk}
        assert len(visited_workers) > 1  # walk migrated between workers
        for a, b in zip(walk, walk[1:]):
            assert graph.has_edge(int(a), int(b))

    def test_unbalanced_budgets_shift_mix(self, setup):
        """A starved worker uses cheaper samplers than a rich worker."""
        from repro import SamplerKind

        graph, model, constants, table = setup
        partition = hash_partition(graph.num_nodes, 2)
        max_half = table.max_memory() / 2
        fw = PartitionedFramework(
            graph, model, partition, [0.02 * max_half, 1.0 * max_half],
            bounding_constants=constants, rng=0,
        )
        poor, rich = fw.worker_stats()
        poor_alias = poor.sampler_counts.get(SamplerKind.ALIAS, 0) / poor.num_nodes
        rich_alias = rich.sampler_counts.get(SamplerKind.ALIAS, 0) / rich.num_nodes
        assert rich_alias > poor_alias
        assert poor.modeled_time / poor.num_nodes > rich.modeled_time / rich.num_nodes

    def test_matches_global_when_budget_split_evenly(self, setup):
        """Total modeled time of k workers is close to (never beats) the
        global optimizer at the same total budget — partitioning only
        constrains the knapsack."""
        graph, model, constants, table = setup
        total_budget = 0.3 * table.max_memory()
        global_assignment = lp_greedy(table, total_budget)
        partition = degree_balanced_partition(graph.degrees, 4)
        fw = PartitionedFramework(
            graph, model, partition, [total_budget / 4] * 4,
            bounding_constants=constants, rng=0,
        )
        assert fw.total_modeled_time() >= global_assignment.total_time - 1e-6
        assert fw.total_modeled_time() <= 2.0 * global_assignment.total_time

    def test_validation_errors(self, setup):
        graph, model, constants, _ = setup
        with pytest.raises(OptimizerError, match="partition covers"):
            PartitionedFramework(
                graph, model, np.zeros(3, dtype=np.int64), [1e6],
                bounding_constants=constants,
            )
        with pytest.raises(OptimizerError, match="budgets for"):
            PartitionedFramework(
                graph, model, hash_partition(graph.num_nodes, 2), [1e6],
                bounding_constants=constants,
            )

    def test_faithful_walks(self, setup):
        from repro import WalkCorpus
        from repro.analysis import diagnose_walks

        graph, model, constants, table = setup
        partition = hash_partition(graph.num_nodes, 3)
        budget = 0.3 * table.max_memory() / 3
        fw = PartitionedFramework(
            graph, model, partition, [budget] * 3,
            bounding_constants=constants, rng=0,
        )
        walks = fw.walk_engine.walks_all_nodes(num_walks=50, length=12, rng=2)
        corpus = WalkCorpus.from_walks(walks)
        # 200-node graph spreads 120k transitions thin; 60 samples per
        # context is enough for the noise-normalised check.
        diagnostics = diagnose_walks(graph, model, corpus, min_samples=60)
        assert diagnostics.contexts_checked > 0
        assert diagnostics.is_faithful(max_noise_units=3.5)
