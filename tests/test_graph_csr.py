"""Unit tests for the CSR graph structure."""

import numpy as np
import pytest

from repro import CSRGraph
from repro.exceptions import EmptyGraphError, GraphFormatError


class TestConstruction:
    def test_from_edges_basic(self):
        g = CSRGraph.from_edges([(0, 1), (1, 2)])
        assert g.num_nodes == 3
        assert g.num_edges == 4  # stored in both directions

    def test_explicit_arrays(self):
        g = CSRGraph(
            indptr=[0, 1, 2],
            indices=[1, 0],
            weights=[2.0, 2.0],
        )
        assert g.num_nodes == 2
        assert g.edge_weight(0, 1) == 2.0

    def test_unweighted_defaults_to_unit(self):
        g = CSRGraph(indptr=[0, 1, 2], indices=[1, 0])
        assert g.is_unit_weight
        assert np.all(g.weights == 1.0)

    def test_directed_storage(self):
        g = CSRGraph.from_edges([(0, 1)], undirected=False)
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)

    def test_empty_graph(self):
        g = CSRGraph.from_edges([], num_nodes=3)
        assert g.num_nodes == 3
        assert g.num_edges == 0
        assert g.degree(0) == 0

    def test_zero_node_graph(self):
        g = CSRGraph.from_edges([])
        assert g.num_nodes == 0
        with pytest.raises(EmptyGraphError):
            _ = g.max_degree


class TestValidation:
    def test_bad_indptr_start(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(indptr=[1, 2], indices=[0, 1])

    def test_decreasing_indptr(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(indptr=[0, 2, 1], indices=[1, 0])

    def test_indptr_end_mismatch(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(indptr=[0, 1, 3], indices=[1, 0])

    def test_out_of_range_neighbor(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(indptr=[0, 1], indices=[5])

    def test_negative_weight(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(indptr=[0, 1, 2], indices=[1, 0], weights=[-1.0, 1.0])

    def test_nan_weight(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(indptr=[0, 1, 2], indices=[1, 0], weights=[np.nan, 1.0])

    def test_unsorted_adjacency(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(indptr=[0, 2, 3, 4], indices=[2, 1, 0, 0])

    def test_weight_length_mismatch(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(indptr=[0, 1, 2], indices=[1, 0], weights=[1.0])


class TestAccessors:
    def test_degrees(self, toy_graph):
        assert list(toy_graph.degrees) == [3, 1, 2, 2]
        assert toy_graph.degree(0) == 3
        assert toy_graph.max_degree == 3

    def test_average_degree(self, toy_graph):
        assert toy_graph.average_degree == pytest.approx(2.0)

    def test_neighbors_sorted(self, toy_graph):
        nbrs = toy_graph.neighbors(0)
        assert list(nbrs) == [1, 2, 3]

    def test_neighbor_weights(self, weighted_graph):
        nbrs = weighted_graph.neighbors(0)
        weights = weighted_graph.neighbor_weights(0)
        expected = {1: 1.0, 2: 2.0}
        for z, w in zip(nbrs, weights):
            assert w == expected[int(z)]

    def test_weight_sum(self, weighted_graph):
        assert weighted_graph.weight_sum(0) == pytest.approx(3.0)
        assert weighted_graph.weight_sum(2) == pytest.approx(5.5)

    def test_weight_sums_match_manual(self, weighted_graph):
        for v in range(weighted_graph.num_nodes):
            manual = float(weighted_graph.neighbor_weights(v).sum())
            assert weighted_graph.weight_sum(v) == pytest.approx(manual)

    def test_weight_sum_isolated_node(self):
        g = CSRGraph.from_edges([(0, 1)], num_nodes=3)
        assert g.weight_sum(2) == 0.0

    def test_nodes_iterator(self, toy_graph):
        assert list(toy_graph.nodes()) == [0, 1, 2, 3]

    def test_edges_iterator(self, path_graph):
        edges = list(path_graph.edges())
        assert (0, 1, 1.0) in edges
        assert (1, 0, 1.0) in edges
        assert len(edges) == path_graph.num_edges


class TestEdgeQueries:
    def test_has_edge(self, toy_graph):
        assert toy_graph.has_edge(0, 1)
        assert toy_graph.has_edge(2, 3)
        assert not toy_graph.has_edge(1, 2)

    def test_edge_weight_default(self, toy_graph):
        assert toy_graph.edge_weight(1, 3) == 0.0
        assert toy_graph.edge_weight(1, 3, default=-1.0) == -1.0

    def test_edge_index(self, toy_graph):
        pos = toy_graph.edge_index(0, 2)
        assert toy_graph.indices[pos] == 2
        assert toy_graph.edge_index(1, 2) == -1

    def test_has_edges_bulk(self, toy_graph):
        result = toy_graph.has_edges_bulk(0, np.array([0, 1, 2, 3]))
        assert list(result) == [False, True, True, True]

    def test_has_edges_bulk_empty_row(self):
        g = CSRGraph.from_edges([(0, 1)], num_nodes=3)
        result = g.has_edges_bulk(2, np.array([0, 1]))
        assert not result.any()

    def test_has_edges_bulk_matches_scalar(self, medium_graph, rng):
        u = int(rng.integers(medium_graph.num_nodes))
        targets = rng.integers(medium_graph.num_nodes, size=50)
        bulk = medium_graph.has_edges_bulk(u, targets)
        scalar = [medium_graph.has_edge(u, int(z)) for z in targets]
        assert list(bulk) == scalar


class TestDerived:
    def test_symmetry_of_undirected(self, toy_graph):
        assert toy_graph.is_symmetric()

    def test_asymmetric_directed(self):
        g = CSRGraph.from_edges([(0, 1)], undirected=False, num_nodes=2)
        assert not g.is_symmetric()

    def test_memory_bytes_unweighted(self, toy_graph):
        expected = (4 + 1) * 4 + 8 * 4  # indptr + indices
        assert toy_graph.memory_bytes() == expected

    def test_memory_bytes_weighted(self, weighted_graph):
        base = (weighted_graph.num_nodes + 1) * 4 + weighted_graph.num_edges * 4
        assert weighted_graph.memory_bytes() == base + weighted_graph.num_edges * 4

    def test_equality(self, toy_graph):
        other = CSRGraph.from_edges([(0, 1), (0, 2), (0, 3), (2, 3)])
        assert toy_graph == other
        assert toy_graph != CSRGraph.from_edges([(0, 1)])

    def test_repr(self, toy_graph):
        assert "num_nodes=4" in repr(toy_graph)
