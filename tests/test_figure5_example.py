"""End-to-end reproduction of the paper's Figure 5 worked example.

4-node toy graph, NV(0.25, 4), c = 1, b_f = b_i = 4, budget 188 bytes.
Every number in the figure is asserted: the cost-model table, the sorted
gradients, the applied update sequence with running memory, and the final
assignment {0: R, 1: R, 2: A, 3: A}.
"""

import numpy as np
import pytest

from repro import (
    CostParams,
    Node2VecModel,
    SamplerKind,
    build_cost_table,
    compute_bounding_constants,
    lp_greedy,
)
from repro.datasets import figure5_toy_graph
from repro.optimizer.lp_greedy import build_schedule

PARAMS = CostParams(float_bytes=4, int_bytes=4, fixed_check_cost=1.0)
BUDGET = 188.0


@pytest.fixture(scope="module")
def setup():
    graph = figure5_toy_graph()
    model = Node2VecModel(a=0.25, b=4.0)
    constants = compute_bounding_constants(graph, model)
    table = build_cost_table(graph, constants, PARAMS)
    return graph, model, constants, table


class TestCostModelTable:
    """The figure's top table, cell by cell."""

    def test_degrees(self, setup):
        graph, *_ = setup
        assert list(graph.degrees) == [3, 1, 2, 2]

    def test_bounding_constants(self, setup):
        _, _, constants, _ = setup
        assert constants[0] == pytest.approx(2.41, abs=0.005)
        assert constants[1] == pytest.approx(1.00)
        assert constants[2] == pytest.approx(1.60)
        assert constants[3] == pytest.approx(1.60)

    def test_naive_columns(self, setup):
        *_, table = setup
        assert np.allclose(table.memory[:, 0], [3.0, 3.0, 3.0, 3.0])
        assert np.allclose(table.time[:, 0], [6.0, 2.0, 4.0, 4.0])

    def test_rejection_columns(self, setup):
        *_, table = setup
        assert np.allclose(table.memory[:, 1], [36.0, 12.0, 24.0, 24.0])
        assert np.allclose(
            table.time[:, 1], [2.41, 1.0, 1.6, 1.6], atol=0.005
        )

    def test_alias_columns(self, setup):
        *_, table = setup
        assert np.allclose(table.memory[:, 2], [96.0, 16.0, 48.0, 48.0])
        assert np.allclose(table.time[:, 2], 1.0)


class TestSortedGradients:
    """The figure's bottom table: eight gradient entries in sorted order
    (node 1's R→A entry is P-dominated and eliminated, matching Property 1,
    which the figure keeps only because its gradient is exactly 0)."""

    def test_gradient_values(self, setup):
        *_, table = setup
        _, steps = build_schedule(table)
        grads = [round(s.gradient, 3) for s in steps]
        assert grads == sorted(grads)
        # The figure's gradient column (without node 1's zero entry).
        assert grads == [-0.114, -0.114, -0.111, -0.109, -0.025, -0.025, -0.024]

    def test_initialization_all_naive(self, setup):
        *_, table = setup
        initial, _ = build_schedule(table)
        assert np.all(initial == SamplerKind.NAIVE)
        assert table.assignment_memory(initial) == pytest.approx(12.0)


class TestGreedyRun:
    def test_update_sequence(self, setup):
        *_, table = setup
        assignment = lp_greedy(table, BUDGET)
        applied = [
            (entry.node, entry.previous.short, entry.chosen.short)
            for entry in assignment.trace
        ]
        # Ties between nodes 2 and 3 may resolve either way; everything
        # else is fixed by the gradients.
        assert sorted(applied[:2]) == [(2, "N", "R"), (3, "N", "R")]
        assert applied[2:4] == [(1, "N", "R"), (0, "N", "R")]
        assert sorted(applied[4:]) == [(2, "R", "A"), (3, "R", "A")]
        assert [e.used_memory_after for e in assignment.trace] == [
            33, 54, 63, 96, 120, 144,
        ]

    def test_final_assignment(self, setup):
        *_, table = setup
        assignment = lp_greedy(table, BUDGET)
        assert assignment[0] is SamplerKind.REJECTION
        assert assignment[1] is SamplerKind.REJECTION
        assert assignment[2] is SamplerKind.ALIAS
        assert assignment[3] is SamplerKind.ALIAS
        assert assignment.used_memory == pytest.approx(144.0)

    def test_break_condition(self, setup):
        """The figure's narrative: after reaching 144, the remaining 44
        bytes cannot fund node 0's R→A upgrade (needs 60)."""
        *_, table = setup
        assignment = lp_greedy(table, BUDGET)
        next_upgrade = table.memory[0, 2] - table.memory[0, 1]
        assert next_upgrade == 60.0
        assert BUDGET - assignment.used_memory == pytest.approx(44.0)
        assert next_upgrade > BUDGET - assignment.used_memory

    def test_walks_run_on_figure5_assignment(self, setup):
        """The worked example is executable, not just arithmetic."""
        from repro import MemoryAwareFramework

        graph, model, constants, _ = setup
        fw = MemoryAwareFramework(
            graph, model, budget=BUDGET,
            cost_params=PARAMS, bounding_constants=constants,
        )
        walk = fw.walk(0, 20, rng=0)
        assert len(walk) == 21
        for a, b in zip(walk, walk[1:]):
            assert graph.has_edge(int(a), int(b))
