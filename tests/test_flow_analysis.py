"""Tests for the ``reproflow`` interprocedural passes (FLOW-*).

Planted-violation fixtures live in ``tests/analysis_fixtures/`` next to
the per-file rule fixtures; they are parsed by the analyser, never
imported.  Each ``flow_*_bad.py`` plants one violation per flavour of
its rule, and the matching ``flow_*_good.py`` shows the sanctioned
pattern for the same code shape.
"""

from pathlib import Path

import pytest

from repro.analysis.flow import build_program
from repro.analysis.flow.rules import (
    FLOW_RULE_REGISTRY,
    check_program,
    iter_flow_rules,
)
from repro.analysis.lint import Baseline, LintConfigError, lint_main, run_lint
from repro.analysis.lint.engine import parse_source_file
from repro.analysis.lint.runner import default_baseline_path

FIXTURES = Path(__file__).resolve().parent / "analysis_fixtures"
REPO_ROOT = default_baseline_path().parent


def lint_flow_fixture(name, rules):
    """Run selected flow passes over one fixture with no baseline."""
    result, _ = run_lint(
        [FIXTURES / name], rules=rules, baseline=Baseline(), root=FIXTURES
    )
    return result


# ----------------------------------------------------------------------
# per-rule detection: bad fixture fires, good fixture stays silent
# ----------------------------------------------------------------------
FLOW_CASES = [
    ("FLOW-RNG", "flow_rng_bad.py", "flow_rng_good.py", 7),
    ("FLOW-MEM", "flow_mem_bad.py", "flow_mem_good.py", 2),
    ("FLOW-MUT", "flow_mut_bad.py", "flow_mut_good.py", 4),
]


@pytest.mark.parametrize("rule_id,bad,good,count", FLOW_CASES)
def test_flow_rule_fires_on_bad_fixture(rule_id, bad, good, count):
    result = lint_flow_fixture(bad, [rule_id])
    assert len(result.new_findings) == count
    assert all(f.rule == rule_id for f in result.new_findings)


@pytest.mark.parametrize("rule_id,bad,good,count", FLOW_CASES)
def test_flow_rule_silent_on_good_fixture(rule_id, bad, good, count):
    result = lint_flow_fixture(good, [rule_id])
    assert result.new_findings == []


def test_naming_a_flow_rule_implies_the_flow_pass():
    # No ``flow=True``: selecting FLOW-RNG by id is enough.
    result = lint_flow_fixture("flow_rng_bad.py", ["FLOW-RNG"])
    assert result.new_findings


def test_flow_false_without_flow_rules_emits_nothing():
    result, _ = run_lint(
        [FIXTURES / "flow_rng_bad.py"],
        rules=["DOC001"],
        baseline=Baseline(),
        root=FIXTURES,
    )
    assert all(f.rule == "DOC001" for f in result.new_findings)


# ----------------------------------------------------------------------
# specific flavours, pinned by message content
# ----------------------------------------------------------------------
def _messages(name, rule_id):
    return [f.message for f in lint_flow_fixture(name, [rule_id]).new_findings]


def test_flow_rng_flags_unseeded_and_ambient_and_boundary():
    messages = _messages("flow_rng_bad.py", "FLOW-RNG")
    assert any("no seed draws OS entropy" in m for m in messages)
    assert any("ambient shared RNG state" in m for m in messages)
    assert any("flows into `sample_from`" in m for m in messages)
    assert any("crosses the process boundary" in m for m in messages)
    assert any("constructed inside @hot_path" in m for m in messages)


def test_flow_mem_reports_self_store_and_interprocedural_escape():
    messages = _messages("flow_mem_bad.py", "FLOW-MEM")
    assert any("`self.probs`" in m for m in messages)
    # The allocation happens in build_table; the escape is reported at
    # the *caller* that stores the returned array in a module global.
    assert any("`_TABLE_CACHE[...]`" in m for m in messages)


def test_flow_mut_covers_global_item_environ_and_transitive_writes():
    findings = lint_flow_fixture("flow_mut_bad.py", ["FLOW-MUT"]).new_findings
    symbols = {f.symbol for f in findings}
    assert "work_chunk" in symbols
    assert "summarize" in symbols  # reachable only through the call graph
    messages = [f.message for f in findings]
    assert any("assigns module global `_TOTAL`" in m for m in messages)
    assert any("os.environ" in m for m in messages)


# ----------------------------------------------------------------------
# call graph machinery
# ----------------------------------------------------------------------
def _program_over(*names):
    sources = {}
    for name in names:
        src = parse_source_file(FIXTURES / name, root=FIXTURES)
        sources[src.display_path] = src
    return build_program(sources)


def test_worker_entry_points_and_reachability():
    program = _program_over("flow_mut_bad.py")
    entries = {
        program.functions[qid].name for qid in program.worker_entry_points()
    }
    assert entries == {"work_chunk"}
    reachable = {
        program.functions[qid].name
        for qid in program.worker_reachable()
        if qid in program.functions
    }
    assert {"work_chunk", "summarize"} <= reachable
    assert "run" not in reachable  # the dispatcher itself stays parent-side


def test_clean_fixture_has_no_worker_findings():
    program = _program_over("flow_mut_good.py")
    findings = check_program(program, iter_flow_rules(["FLOW-MUT"]))
    assert findings == []


def test_unknown_flow_rule_id_raises():
    with pytest.raises(LintConfigError, match="unknown flow rule"):
        iter_flow_rules(["FLOW-NOPE"])


def test_flow_registry_catalogue():
    assert set(FLOW_RULE_REGISTRY) == {"FLOW-RNG", "FLOW-MEM", "FLOW-MUT"}
    for rule in FLOW_RULE_REGISTRY.values():
        assert rule.description
        assert rule.severity == "error"


# ----------------------------------------------------------------------
# suppressions and restriction plumbing
# ----------------------------------------------------------------------
def test_inline_suppression_silences_flow_finding(tmp_path):
    target = tmp_path / "module.py"
    target.write_text(
        '"""Doc."""\n\n'
        "from numpy.random import default_rng\n\n\n"
        "def f():\n"
        "    return default_rng()  # reprolint: disable=FLOW-RNG\n"
    )
    result, _ = run_lint(
        [target], rules=["FLOW-RNG"], baseline=Baseline(), root=tmp_path
    )
    assert result.new_findings == []


def test_restrict_to_filters_flow_findings(tmp_path):
    clean = tmp_path / "clean.py"
    clean.write_text('"""Doc."""\n\nX = 1\n')
    dirty = tmp_path / "dirty.py"
    dirty.write_text(
        '"""Doc."""\n\n'
        "from numpy.random import default_rng\n\n\n"
        "def f():\n"
        "    return default_rng()\n"
    )
    # Restricted to the clean file: the flow pass still runs over the
    # whole program but reports nothing outside the restriction.
    result, _ = run_lint(
        [tmp_path],
        rules=["FLOW-RNG"],
        baseline=Baseline(),
        root=tmp_path,
        restrict_to={"clean.py"},
    )
    assert result.new_findings == []
    assert result.files == ["clean.py"]
    # Unrestricted, the violation is reported.
    result, _ = run_lint(
        [tmp_path], rules=["FLOW-RNG"], baseline=Baseline(), root=tmp_path
    )
    assert [f.path for f in result.new_findings] == ["dirty.py"]


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
def test_cli_flow_exits_nonzero_on_bad_fixture():
    argv = [
        str(FIXTURES / "flow_rng_bad.py"),
        "--no-baseline",
        "--flow",
        "--rules",
        "FLOW-RNG",
    ]
    assert lint_main(argv) == 1


def test_cli_list_rules_includes_flow_catalogue(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in FLOW_RULE_REGISTRY:
        assert rule_id in out


# ----------------------------------------------------------------------
# self-check: the flow passes' verdict on this repository
# ----------------------------------------------------------------------
def test_flow_self_check_src_repro_clean_modulo_baseline():
    result, _ = run_lint(
        [REPO_ROOT / "src" / "repro"],
        baseline=default_baseline_path(),
        flow=True,
    )
    assert result.new_findings == [], "\n".join(
        f.render() for f in result.new_findings
    )
    assert result.stale_baseline == []
    # The grandfathered flow findings are the sanitizer's own
    # process-local state: the kernel-observation flag — justified in
    # the baseline.  (The kernel_scope attribution-stack entries retired
    # when the out-of-core scheduler changed its worker-reachability.)
    flow_baselined = [
        f for f in result.baselined if f.rule in FLOW_RULE_REGISTRY
    ]
    assert len(flow_baselined) == 2
    assert {f.rule for f in flow_baselined} == {"FLOW-MUT"}
    assert {f.symbol for f in flow_baselined} == {"set_kernel_observation"}
    assert len(result.baselined) <= 2
