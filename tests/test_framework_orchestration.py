"""Integration tests for the MemoryAwareFramework orchestrator."""

import numpy as np
import pytest

from repro import (
    CostParams,
    MemoryAwareFramework,
    Node2VecModel,
    SamplerKind,
    SimulatedOOMError,
    compute_bounding_constants,
)
from repro.exceptions import InfeasibleBudgetError, OptimizerError
from repro.framework import (
    AliasNodeSampler,
    NaiveNodeSampler,
    RejectionNodeSampler,
)


class TestConstruction:
    def test_phases_recorded(self, medium_graph, nv_model):
        fw = MemoryAwareFramework(medium_graph, nv_model, budget=1e7)
        assert fw.timings.bounding_seconds > 0
        assert fw.timings.build_seconds > 0
        assert fw.timings.init_seconds == pytest.approx(
            fw.timings.bounding_seconds
            + fw.timings.optimize_seconds
            + fw.timings.build_seconds
        )

    def test_precomputed_constants_skip_phase1(self, medium_graph, nv_model):
        constants = compute_bounding_constants(medium_graph, nv_model)
        fw = MemoryAwareFramework(
            medium_graph, nv_model, budget=1e7, bounding_constants=constants
        )
        assert fw.timings.bounding_seconds == 0.0

    def test_estimate_mode(self, medium_graph, nv_model):
        fw = MemoryAwareFramework(
            medium_graph, nv_model, budget=1e7,
            bounding="estimate", degree_threshold=10,
        )
        assert not fw.bounding_constants.exact

    def test_samplers_match_assignment(self, medium_graph, nv_model):
        fw = MemoryAwareFramework(medium_graph, nv_model, budget=1e6)
        classes = {
            SamplerKind.NAIVE: NaiveNodeSampler,
            SamplerKind.REJECTION: RejectionNodeSampler,
            SamplerKind.ALIAS: AliasNodeSampler,
        }
        for v in range(medium_graph.num_nodes):
            sampler = fw.sampler(v)
            if medium_graph.degree(v) == 0:
                assert sampler is None
            else:
                assert isinstance(sampler, classes[fw.assignment[v]])

    def test_budget_respected(self, medium_graph, nv_model):
        budget = 5e5
        fw = MemoryAwareFramework(medium_graph, nv_model, budget=budget)
        assert fw.assignment.used_memory <= budget
        assert fw.meter.used_bytes <= budget + 1e-6

    def test_infeasible_budget(self, medium_graph, nv_model):
        with pytest.raises(InfeasibleBudgetError):
            MemoryAwareFramework(medium_graph, nv_model, budget=1.0)

    def test_unknown_optimizer(self, toy_graph, nv_model):
        with pytest.raises(OptimizerError):
            MemoryAwareFramework(toy_graph, nv_model, budget=1e6, optimizer="magic")

    def test_unknown_bounding_mode(self, toy_graph, nv_model):
        with pytest.raises(OptimizerError):
            MemoryAwareFramework(toy_graph, nv_model, budget=1e6, bounding="psychic")

    @pytest.mark.parametrize("optimizer", ["deg-inc", "deg-dec"])
    def test_degree_optimizers(self, medium_graph, nv_model, optimizer):
        fw = MemoryAwareFramework(
            medium_graph, nv_model, budget=1e6, optimizer=optimizer
        )
        assert fw.assignment.algorithm == optimizer


class TestWalking:
    def test_walk(self, medium_graph, nv_model, rng):
        fw = MemoryAwareFramework(medium_graph, nv_model, budget=1e6)
        walk = fw.walk(0, 15, rng)
        assert len(walk) == 16
        for a, b in zip(walk, walk[1:]):
            assert medium_graph.has_edge(int(a), int(b))

    def test_generate_walks(self, toy_graph, nv_model, rng):
        fw = MemoryAwareFramework(toy_graph, nv_model, budget=1e4)
        walks = fw.generate_walks(num_walks=2, length=5, rng=rng)
        assert len(walks) == 2 * toy_graph.num_nodes


class TestDynamicBudget:
    def test_increase_and_decrease(self, medium_graph, nv_model):
        fw = MemoryAwareFramework(medium_graph, nv_model, budget=2e4)
        before = fw.assignment.counts()
        update, seconds = fw.set_budget(3e6)
        after = fw.assignment.counts()
        assert update.steps_applied > 0
        assert after[SamplerKind.ALIAS] >= before[SamplerKind.ALIAS]
        assert seconds >= 0

        update, _ = fw.set_budget(2e4)
        assert update.steps_reverted > 0
        assert fw.assignment.used_memory <= 2e4

    def test_meter_tracks_budget_changes(self, medium_graph, nv_model):
        fw = MemoryAwareFramework(medium_graph, nv_model, budget=2e4)
        fw.set_budget(3e6)
        assert fw.meter.used_bytes == pytest.approx(
            fw.assignment.used_memory, rel=1e-9
        )
        fw.set_budget(2e4)
        assert fw.meter.used_bytes == pytest.approx(
            fw.assignment.used_memory, rel=1e-9
        )

    def test_walks_still_work_after_update(self, medium_graph, nv_model, rng):
        fw = MemoryAwareFramework(medium_graph, nv_model, budget=2e4)
        fw.set_budget(2e6)
        walk = fw.walk(0, 10, rng)
        assert len(walk) == 11

    def test_degree_optimizer_rejects_dynamic(self, medium_graph, nv_model):
        fw = MemoryAwareFramework(
            medium_graph, nv_model, budget=1e6, optimizer="deg-inc"
        )
        with pytest.raises(OptimizerError, match="dynamic"):
            fw.set_budget(2e6)


class TestMemoryUnaware:
    @pytest.mark.parametrize("kind", list(SamplerKind))
    def test_uniform_assignment(self, toy_graph, nv_model, kind):
        fw = MemoryAwareFramework.memory_unaware(toy_graph, nv_model, kind)
        for v in range(toy_graph.num_nodes):
            assert fw.assignment[v] is kind

    def test_oom_gate(self, medium_graph, nv_model):
        with pytest.raises(SimulatedOOMError):
            MemoryAwareFramework.memory_unaware(
                medium_graph, nv_model, SamplerKind.ALIAS, physical_memory=1000
            )

    def test_naive_within_tiny_memory(self, medium_graph, nv_model):
        fw = MemoryAwareFramework.memory_unaware(
            medium_graph, nv_model, SamplerKind.NAIVE, physical_memory=10_000
        )
        assert fw.assignment.algorithm == "all-naive"

    def test_rejection_computes_constants(self, toy_graph, nv_model):
        fw = MemoryAwareFramework.memory_unaware(
            toy_graph, nv_model, SamplerKind.REJECTION
        )
        assert fw.timings.bounding_seconds > 0

    def test_isolated_nodes_fall_back_to_naive(self, nv_model):
        from repro import from_edges

        g = from_edges([(0, 1)], num_nodes=3)
        fw = MemoryAwareFramework.memory_unaware(g, nv_model, SamplerKind.ALIAS)
        assert fw.assignment[2] is SamplerKind.NAIVE


class TestModeledTime:
    def test_scalar_samples(self, toy_graph, nv_model):
        fw = MemoryAwareFramework(toy_graph, nv_model, budget=1e4)
        assert fw.modeled_task_time(10) == pytest.approx(
            10 * fw.assignment.total_time
        )

    def test_vector_samples(self, toy_graph, nv_model):
        fw = MemoryAwareFramework(toy_graph, nv_model, budget=1e4)
        samples = np.array([1.0, 2.0, 0.0, 1.0])
        rows = np.arange(4)
        per = fw.cost_table.time[rows, fw.assignment.samplers]
        assert fw.modeled_task_time(samples) == pytest.approx(float(per @ samples))

    def test_more_memory_never_slower(self, medium_graph, nv_model):
        constants = compute_bounding_constants(medium_graph, nv_model)
        times = []
        for budget in (1e4, 5e4, 2e5):
            fw = MemoryAwareFramework(
                medium_graph, nv_model, budget=budget,
                bounding_constants=constants,
            )
            times.append(fw.modeled_task_time(1))
        assert times == sorted(times, reverse=True)
