"""Unit tests for the second-order random walk models."""

import numpy as np
import pytest

from repro import (
    AutoregressiveModel,
    FirstOrderModel,
    Node2VecModel,
    available_models,
    get_model,
    register_model,
)
from repro.exceptions import ModelError
from repro.models import SecondOrderModel


class TestNode2Vec:
    def test_distance_zero_uses_a(self, toy_graph):
        model = Node2VecModel(a=0.5, b=2.0)
        # From edge (1, 0), candidate z = 1 is the previous node.
        assert model.biased_weight(toy_graph, 1, 0, 1) == pytest.approx(1 / 0.5)

    def test_distance_one_unchanged(self, toy_graph):
        model = Node2VecModel(a=0.5, b=2.0)
        # From edge (2, 0), candidate 3 is adjacent to 2.
        assert model.biased_weight(toy_graph, 2, 0, 3) == pytest.approx(1.0)

    def test_distance_two_uses_b(self, toy_graph):
        model = Node2VecModel(a=0.5, b=2.0)
        # From edge (1, 0), candidate 2 is not adjacent to 1.
        assert model.biased_weight(toy_graph, 1, 0, 2) == pytest.approx(1 / 2.0)

    def test_vectorised_matches_scalar(self, toy_graph, nv_model):
        for u, v in [(1, 0), (2, 0), (0, 2), (3, 2)]:
            vectorised = nv_model.biased_weights(toy_graph, u, v)
            scalar = [
                nv_model.biased_weight(toy_graph, u, v, int(z))
                for z in toy_graph.neighbors(v)
            ]
            assert np.allclose(vectorised, scalar)

    def test_weighted_graph(self, weighted_graph):
        model = Node2VecModel(a=2.0, b=0.5)
        # From edge (0, 2): candidate 1 is adjacent to 0 (dist 1) → w.
        w12 = weighted_graph.edge_weight(2, 1)
        assert model.biased_weight(weighted_graph, 0, 2, 1) == pytest.approx(w12)

    def test_e2e_distribution_normalised(self, toy_graph, nv_model):
        p = nv_model.e2e_distribution(toy_graph, 1, 0)
        assert p.sum() == pytest.approx(1.0)
        assert np.all(p > 0)

    def test_target_ratio_values(self, toy_graph):
        model = Node2VecModel(a=0.25, b=4.0)
        assert model.target_ratio(toy_graph, 1, 0, 1) == pytest.approx(4.0)
        assert model.target_ratio(toy_graph, 1, 0, 2) == pytest.approx(0.25)
        assert model.target_ratio(toy_graph, 2, 0, 3) == pytest.approx(1.0)

    def test_target_ratios_subset(self, toy_graph, nv_model):
        full = nv_model.target_ratios(toy_graph, 1, 0)
        subset = nv_model.target_ratios_subset(
            toy_graph, 1, 0, toy_graph.neighbors(0)[:2]
        )
        assert np.allclose(subset, full[:2])

    def test_max_ratio_bound(self, toy_graph):
        assert Node2VecModel(0.25, 4.0).max_ratio_bound(toy_graph) == 4.0
        assert Node2VecModel(4.0, 0.25).max_ratio_bound(toy_graph) == 4.0
        assert Node2VecModel(2.0, 2.0).max_ratio_bound(toy_graph) == 1.0

    @pytest.mark.parametrize("a,b", [(0, 1), (-1, 1), (1, 0), (1, -2)])
    def test_invalid_parameters(self, a, b):
        with pytest.raises(ModelError):
            Node2VecModel(a=a, b=b)

    def test_repr(self):
        assert "a=0.25" in repr(Node2VecModel(0.25, 4.0))


class TestAutoregressive:
    def test_alpha_zero_is_first_order(self, toy_graph):
        model = AutoregressiveModel(alpha=0.0)
        first = FirstOrderModel()
        for u, v in [(1, 0), (0, 2)]:
            p_auto = model.e2e_distribution(toy_graph, u, v)
            p_first = first.e2e_distribution(toy_graph, u, v)
            assert np.allclose(p_auto, p_first)

    def test_biased_weight_formula(self, toy_graph):
        model = AutoregressiveModel(alpha=0.4)
        # From edge (2, 0) to z = 3: p_03 = 1/3, p_23 = 1/2 (2's nbrs {0,3}).
        expected = 0.6 * (1 / 3) + 0.4 * (1 / 2)
        assert model.biased_weight(toy_graph, 2, 0, 3) == pytest.approx(expected)

    def test_no_back_edge_gives_first_order_term_only(self, toy_graph):
        model = AutoregressiveModel(alpha=0.4)
        # From edge (1, 0) to z = 2: p_12 = 0 (1 and 2 not adjacent).
        assert model.biased_weight(toy_graph, 1, 0, 2) == pytest.approx(0.6 / 3)

    def test_vectorised_matches_scalar(self, toy_graph, auto_model):
        for u, v in [(1, 0), (2, 0), (0, 3)]:
            vectorised = auto_model.biased_weights(toy_graph, u, v)
            scalar = [
                auto_model.biased_weight(toy_graph, u, v, int(z))
                for z in toy_graph.neighbors(v)
            ]
            assert np.allclose(vectorised, scalar)

    def test_target_ratios_subset_matches_full(self, toy_graph, auto_model):
        full = auto_model.target_ratios(toy_graph, 2, 0)
        subset = auto_model.target_ratios_subset(
            toy_graph, 2, 0, toy_graph.neighbors(0)
        )
        assert np.allclose(subset, full)

    def test_ratios_proportional_to_base_definition(self, weighted_graph, auto_model):
        # target_ratios may be scaled per (u, v); verify proportionality to
        # biased_weights / edge weights.
        u, v = 0, 2
        ratios = auto_model.target_ratios(weighted_graph, u, v)
        reference = auto_model.biased_weights(
            weighted_graph, u, v
        ) / weighted_graph.neighbor_weights(v)
        scale = ratios[0] / reference[0]
        assert np.allclose(ratios, reference * scale)

    def test_no_bound(self, toy_graph):
        assert AutoregressiveModel(0.2).max_ratio_bound(toy_graph) is None

    @pytest.mark.parametrize("alpha", [-0.1, 1.0, 1.5])
    def test_invalid_alpha(self, alpha):
        with pytest.raises(ModelError):
            AutoregressiveModel(alpha=alpha)

    def test_e2e_distribution_normalised(self, weighted_graph, auto_model):
        p = auto_model.e2e_distribution(weighted_graph, 1, 2)
        assert p.sum() == pytest.approx(1.0)


class TestFirstOrder:
    def test_matches_n2e(self, weighted_graph):
        model = FirstOrderModel()
        p = model.e2e_distribution(weighted_graph, 3, 2)
        expected = weighted_graph.neighbor_weights(2) / weighted_graph.weight_sum(2)
        assert np.allclose(p, expected)

    def test_ratios_all_one(self, toy_graph):
        model = FirstOrderModel()
        assert np.all(model.target_ratios(toy_graph, 1, 0) == 1.0)
        assert model.max_ratio_bound(toy_graph) == 1.0


class TestRegistry:
    def test_builtins_registered(self):
        names = available_models()
        assert {"node2vec", "autoregressive", "first-order"} <= set(names)

    def test_get_model_with_params(self):
        model = get_model("node2vec", a=0.5, b=2.0)
        assert isinstance(model, Node2VecModel)
        assert model.a == 0.5

    def test_get_unknown_model(self):
        with pytest.raises(ModelError, match="unknown model"):
            get_model("nope")

    def test_register_custom_model(self, toy_graph):
        class ConstantModel(SecondOrderModel):
            name = "constant-test"

            def biased_weight(self, graph, u, v, z):
                return 1.0

        register_model(ConstantModel)
        assert "constant-test" in available_models()
        model = get_model("constant-test")
        p = model.e2e_distribution(toy_graph, 1, 0)
        assert np.allclose(p, 1.0 / 3)

    def test_register_requires_name(self):
        class NoName(SecondOrderModel):
            def biased_weight(self, graph, u, v, z):
                return 1.0

        with pytest.raises(ModelError, match="name"):
            register_model(NoName)

    def test_register_rejects_non_model(self):
        with pytest.raises(ModelError):
            register_model(dict)
