"""Tests for the assignment-aware batch engine and the edge-state cache.

Covers the four dispatch paths (naive / rejection / alias / fallback), the
cache's byte accounting, the determinism contract (worker count and cache
size never change the corpus — hash-pinned), chi-square statistical
equivalence with the scalar engine, and dead-end round-tripping through
:class:`WalkCorpus` persistence.
"""

import hashlib
import importlib.util

import numpy as np
import pytest
import scipy.stats

from repro import MemoryAwareFramework, Node2VecModel, SamplerKind
from repro.exceptions import WalkError
from repro.framework.node_samplers import NaiveNodeSampler
from repro.graph import from_edges, powerlaw_cluster_graph
from repro.walks import BatchWalkEngine, EdgeStateCache, parallel_walks
from repro.walks.corpus import WalkCorpus


@pytest.fixture(scope="module")
def graph():
    return powerlaw_cluster_graph(80, 3, 0.4, rng=7)


@pytest.fixture(scope="module")
def model():
    return Node2VecModel(0.5, 2.0)


@pytest.fixture(scope="module")
def framework(graph, model):
    # A budget small enough to mix sampler kinds.
    return MemoryAwareFramework(graph, model, budget=30_000, rng=0)


def corpus_sha(corpus) -> str:
    payload = "\n".join(" ".join(map(str, w.tolist())) for w in corpus)
    return hashlib.sha256(payload.encode()).hexdigest()


#: Both kernel backends; the numba leg skips where the soft dep is absent.
BACKENDS = [
    "numpy",
    pytest.param(
        "numba",
        marks=pytest.mark.skipif(
            importlib.util.find_spec("numba") is None,
            reason="numba not installed",
        ),
    ),
]


# ----------------------------------------------------------------------
# EdgeStateCache
# ----------------------------------------------------------------------
class TestEdgeStateCache:
    def test_disabled_when_budgetless(self):
        for budget in (None, 0, 0.0):
            cache = EdgeStateCache(budget)
            assert not cache.enabled
            assert not cache.put((0, 1), np.ones(4))
            assert cache.get((0, 1)) is None
            assert cache.used_bytes == 0

    def test_hit_returns_stored_array(self):
        cache = EdgeStateCache(1024)
        weights = np.array([0.5, 1.5, 2.0])
        assert cache.put((3, 4), weights)
        assert cache.get((3, 4)) is weights
        assert cache.hits == 1 and cache.misses == 0

    def test_lru_eviction_order(self):
        entry = np.ones(4)  # 32 bytes
        cache = EdgeStateCache(entry.nbytes * 2)
        cache.put((0, 1), entry)
        cache.put((0, 2), np.ones(4))
        cache.get((0, 1))  # refresh (0, 1): now (0, 2) is LRU
        cache.put((0, 3), np.ones(4))
        assert (0, 1) in cache and (0, 3) in cache
        assert (0, 2) not in cache
        assert cache.evictions == 1

    def test_budget_never_exceeded(self):
        rng = np.random.default_rng(0)
        cache = EdgeStateCache(500)
        for i in range(200):
            cache.put((i, i), np.ones(int(rng.integers(1, 8))))
            assert cache.used_bytes <= cache.budget.total_bytes
        assert cache.peak_bytes <= cache.budget.total_bytes
        assert cache.evictions > 0

    def test_oversized_entry_not_cached(self):
        cache = EdgeStateCache(64)
        kept = np.ones(2)
        assert cache.put((0, 0), kept)
        assert not cache.put((1, 1), np.ones(100))
        assert (1, 1) not in cache
        assert (0, 0) in cache  # existing entries survive the refusal

    def test_replacing_key_releases_old_bytes(self):
        cache = EdgeStateCache(1024)
        cache.put((0, 1), np.ones(64))
        cache.put((0, 1), np.ones(2))
        assert cache.used_bytes == np.ones(2).nbytes

    def test_stats_and_describe(self):
        cache = EdgeStateCache(256)
        cache.put((0, 1), np.ones(4))
        cache.get((0, 1))
        cache.get((9, 9))
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        assert "edge-state cache" in cache.describe()


# ----------------------------------------------------------------------
# dispatch
# ----------------------------------------------------------------------
class TestAssignmentAwareDispatch:
    def test_mixed_assignment_uses_assigned_kinds(self, graph, model, framework):
        samplers = framework.walk_engine.samplers
        present = {
            type(s).__name__ for s in samplers if s is not None
        }
        engine = BatchWalkEngine(graph, model, samplers, cache=10_000)
        corpus = engine.walks(num_walks=4, length=12, rng=1)
        dispatch = engine.stats()["dispatch"]
        if "RejectionNodeSampler" in present:
            assert dispatch["rejection"]["walkers"] > 0
        if "AliasNodeSampler" in present:
            assert dispatch["alias"]["walkers"] > 0
        assert len(corpus) == 4 * int((graph.degrees > 0).sum())

    def test_all_naive_without_samplers(self, graph, model):
        engine = BatchWalkEngine(graph, model)
        engine.walks(num_walks=2, length=8, rng=0)
        dispatch = engine.stats()["dispatch"]
        assert dispatch["naive"]["walkers"] > 0
        assert dispatch["rejection"]["walkers"] == 0
        assert dispatch["alias"]["walkers"] == 0

    def test_custom_sampler_routes_to_fallback(self, graph, model):
        class OpaqueSampler(NaiveNodeSampler):
            kind = None  # outside the built-in trio

        samplers = [
            OpaqueSampler(graph, model, v) if graph.degree(v) > 0 else None
            for v in range(graph.num_nodes)
        ]
        engine = BatchWalkEngine(graph, model, samplers)
        corpus = engine.walks(num_walks=2, length=6, rng=0)
        dispatch = engine.stats()["dispatch"]
        assert dispatch["fallback"]["walkers"] > 0
        assert dispatch["naive"]["walkers"] == 0
        for walk in corpus:
            for a, b in zip(walk, walk[1:]):
                assert graph.has_edge(int(a), int(b))

    def test_walks_follow_edges_every_kind(self, graph, model, framework):
        engine = framework.batch_engine(cache_budget=5_000)
        corpus = engine.walks(num_walks=3, length=15, rng=2)
        for walk in corpus:
            for a, b in zip(walk, walk[1:]):
                assert graph.has_edge(int(a), int(b))

    def test_sampler_count_mismatch_rejected(self, graph, model):
        with pytest.raises(WalkError):
            BatchWalkEngine(graph, model, [None] * 3)

    def test_metadata_counters_on_corpus(self, framework):
        engine = framework.batch_engine(cache_budget=8_000)
        corpus = engine.walks(num_walks=2, length=10, rng=3)
        assert corpus.metadata["engine"] == "batch"
        assert corpus.metadata["steps"] > 0
        assert set(corpus.metadata["dispatch"]) == {
            "naive", "rejection", "alias", "fallback",
        }
        cache_stats = corpus.metadata["cache"]
        assert cache_stats["hits"] + cache_stats["misses"] >= 0
        assert cache_stats["used_bytes"] <= cache_stats["budget_bytes"]


# ----------------------------------------------------------------------
# cache behaviour under real walk load
# ----------------------------------------------------------------------
class TestCacheUnderLoad:
    def test_budget_respected_during_walks(self, graph, model):
        fw = MemoryAwareFramework.memory_unaware(
            graph, model, SamplerKind.NAIVE, rng=0
        )
        engine = BatchWalkEngine(
            graph, model, fw.walk_engine.samplers, cache=2_000
        )
        engine.walks(num_walks=10, length=25, rng=4)
        stats = engine.cache.stats()
        assert stats["evictions"] > 0  # budget actually binds
        assert stats["peak_bytes"] <= stats["budget_bytes"]
        assert stats["used_bytes"] <= stats["budget_bytes"]

    def test_cache_size_never_changes_output(self, graph, model):
        fw = MemoryAwareFramework.memory_unaware(
            graph, model, SamplerKind.NAIVE, rng=0
        )
        samplers = fw.walk_engine.samplers
        reference = None
        for budget in (0, 1_000, 50_000, 10**8):
            engine = BatchWalkEngine(graph, model, samplers, cache=budget)
            corpus = engine.walks(num_walks=5, length=20, rng=5)
            digest = corpus_sha(corpus)
            if reference is None:
                reference = digest
            assert digest == reference

    def test_hot_states_hit(self, graph, model):
        fw = MemoryAwareFramework.memory_unaware(
            graph, model, SamplerKind.NAIVE, rng=0
        )
        engine = BatchWalkEngine(
            graph, model, fw.walk_engine.samplers, cache=10**7
        )
        engine.walks(num_walks=20, length=30, rng=6)
        stats = engine.cache.stats()
        assert stats["hits"] > stats["misses"]
        assert 0.5 < stats["hit_rate"] <= 1.0


# ----------------------------------------------------------------------
# determinism (hash-pinned)
# ----------------------------------------------------------------------
class TestBatchDeterminism:
    PINNED = "c9cd8613846572b4ed879b29b79545a33f8cdb71a680c8a16bf90ba65aadd620"

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_pinned_corpus_hash(self, framework, backend):
        # The pin holds for every kernel backend: uniforms are drawn by
        # the engine driver, so a compiled backend consumes the identical
        # RNG stream and must reproduce the identical corpus.
        engine = framework.batch_engine(cache_budget=10_000, backend=backend)
        corpus = parallel_walks(
            engine, num_walks=3, length=20, workers=1, chunk_size=16, rng=11
        )
        assert corpus_sha(corpus) == self.PINNED

    @pytest.mark.parametrize("workers", [1, 3])
    @pytest.mark.parametrize("cache_budget", [0, 3_000, 10**8])
    def test_workers_and_cache_never_change_output(
        self, framework, workers, cache_budget
    ):
        engine = framework.batch_engine(cache_budget=cache_budget)
        corpus = parallel_walks(
            engine,
            num_walks=3,
            length=20,
            workers=workers,
            chunk_size=16,
            rng=11,
        )
        assert corpus_sha(corpus) == self.PINNED

    def test_direct_walks_deterministic(self, framework):
        a = framework.batch_engine(cache_budget=0).walks(
            num_walks=2, length=10, rng=9
        )
        b = framework.batch_engine(cache_budget=10**6).walks(
            num_walks=2, length=10, rng=9
        )
        assert len(a) == len(b)
        for x, y in zip(a, b):
            assert np.array_equal(x, y)


# ----------------------------------------------------------------------
# statistical equivalence (chi-square)
# ----------------------------------------------------------------------
class TestChiSquareEquivalence:
    @staticmethod
    def _transition_table(corpus, contexts):
        """next-node Counter per requested ``(u, v)`` context."""
        counts = corpus.second_order_transition_counts()
        return {ctx: counts.get(ctx, {}) for ctx in contexts}

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_scalar_vs_batch_chi_square(self, graph, model, framework, backend):
        """Two-sample chi-square on next-step counts: p > 0.01.

        Both engines are run on the same assignment; their transition
        counts out of the hottest contexts are compared with a chi-square
        homogeneity test.  Deterministic via fixed seeds.
        """
        num_walks, length = 40, 25
        scalar = WalkCorpus.from_walks(
            framework.generate_walks(num_walks=num_walks, length=length, rng=21)
        )
        batch = framework.batch_engine(
            cache_budget=10_000, backend=backend
        ).walks(num_walks=num_walks, length=length, rng=22)

        scalar_counts = scalar.second_order_transition_counts()
        batch_counts = batch.second_order_transition_counts()
        # Hottest shared contexts, by combined sample count.
        shared = sorted(
            set(scalar_counts) & set(batch_counts),
            key=lambda ctx: -(
                sum(scalar_counts[ctx].values())
                + sum(batch_counts[ctx].values())
            ),
        )[:5]
        assert shared, "no common transition contexts sampled"

        pvalues = []
        for u, v in shared:
            support = graph.neighbors(v)
            s = np.array([scalar_counts[(u, v)].get(int(z), 0) for z in support])
            b = np.array([batch_counts[(u, v)].get(int(z), 0) for z in support])
            if s.sum() < 50 or b.sum() < 50:
                continue
            table = np.stack([s, b])
            keep = table.sum(axis=0) > 0
            _, p, _, _ = scipy.stats.chi2_contingency(table[:, keep])
            pvalues.append(p)
        assert pvalues, "no context had enough samples"
        # Fisher's combined test across contexts: one global verdict.
        _, combined = scipy.stats.combine_pvalues(pvalues, method="fisher")
        assert combined > 0.01

    def test_batch_matches_exact_distribution_chi_square(self, graph, model):
        """Goodness-of-fit of the batch engine against the exact e2e law."""
        engine = BatchWalkEngine(graph, model, cache=10**6)
        corpus = engine.walks(num_walks=60, length=25, rng=23)
        counts = corpus.second_order_transition_counts()
        pvalues = []
        for (u, v), counter in counts.items():
            n = sum(counter.values())
            if n < 300:
                continue
            weights = model.biased_weights(graph, u, v)
            expected = n * weights / weights.sum()
            observed = np.array(
                [counter.get(int(z), 0) for z in graph.neighbors(v)],
                dtype=np.float64,
            )
            keep = expected > 1e-12
            _, p = scipy.stats.chisquare(observed[keep], expected[keep])
            pvalues.append(p)
        assert len(pvalues) >= 3
        _, combined = scipy.stats.combine_pvalues(pvalues, method="fisher")
        assert combined > 0.01


# ----------------------------------------------------------------------
# dead ends round-trip (scalar vs batch, WalkCorpus persistence)
# ----------------------------------------------------------------------
class TestDeadEndRoundTrip:
    @pytest.fixture()
    def sink_graph(self):
        # 0-1-2 chain into sink 3; node 4 isolated; directed.
        return from_edges(
            [(0, 1), (1, 2), (2, 3), (0, 2)],
            undirected=False,
            num_nodes=5,
        )

    def test_trails_identical_semantics(self, sink_graph, model):
        starts = [0, 3, 4]
        scalar_fw = MemoryAwareFramework.memory_unaware(
            sink_graph, model, SamplerKind.NAIVE, rng=0
        )
        scalar_walks = [
            scalar_fw.walk_engine.walk(s, 10, np.random.default_rng(i))
            for i, s in enumerate(starts)
        ]
        engine = BatchWalkEngine(sink_graph, model)
        batch = engine.walks(starts=starts, num_walks=1, length=10, rng=0)

        for walk in list(batch) + scalar_walks:
            assert (walk >= 0).all()  # no padding leaks out
        # Dead-end starts yield the bare start node on both engines.
        assert list(batch[1]) == [3]
        assert list(batch[2]) == [4]
        assert list(scalar_walks[1]) == [3]
        assert list(scalar_walks[2]) == [4]
        # Walks from 0 always end at the sink, fully trimmed.
        assert int(batch[0][-1]) == 3
        assert len(batch[0]) <= 4  # 0 → {1,2} → ... → 3 is at most 4 nodes

    def test_corpus_save_load_round_trip(self, sink_graph, model, tmp_path):
        engine = BatchWalkEngine(sink_graph, model)
        corpus = engine.walks(
            starts=[0, 0, 3, 4], num_walks=2, length=10, rng=1
        )
        path = tmp_path / "walks.txt"
        corpus.save(path)
        loaded = WalkCorpus.load(path)
        assert len(loaded) == len(corpus)
        for original, restored in zip(corpus, loaded):
            assert np.array_equal(original, restored)


# ----------------------------------------------------------------------
# NodeSampler batch APIs
# ----------------------------------------------------------------------
class TestSampleBatchAPIs:
    @pytest.fixture(scope="class", params=list(SamplerKind))
    def sampler(self, request, graph, model):
        fw = MemoryAwareFramework.memory_unaware(
            graph, model, request.param, rng=0
        )
        v = int(graph.degrees.argmax())
        return fw.sampler(v)

    def test_sample_batch_matches_support(self, graph, sampler):
        v = sampler.node
        u = int(graph.neighbors(v)[0])
        draws = sampler.sample_batch(u, 500, np.random.default_rng(0))
        assert draws.shape == (500,)
        assert draws.dtype == np.int64
        assert set(np.unique(draws)) <= set(int(z) for z in graph.neighbors(v))

    def test_sample_first_batch_matches_support(self, graph, sampler):
        v = sampler.node
        draws = sampler.sample_first_batch(300, np.random.default_rng(1))
        assert draws.shape == (300,)
        assert set(np.unique(draws)) <= set(int(z) for z in graph.neighbors(v))

    def test_sample_batch_statistics(self, graph, model, sampler):
        v = sampler.node
        u = int(graph.neighbors(v)[0])
        weights = model.biased_weights(graph, u, v)
        exact = weights / weights.sum()
        draws = sampler.sample_batch(u, 20_000, np.random.default_rng(2))
        support = graph.neighbors(v)
        empirical = np.array(
            [(draws == int(z)).mean() for z in support]
        )
        assert 0.5 * np.abs(empirical - exact).sum() < 0.03
