"""Property-based backend-equivalence tests for the kernel layer.

Hypothesis drives randomized shapes, degree distributions and uniform
streams through all seven kernels and asserts the numpy reference and
the plain-Python loop forms (the functions ``numba.njit`` compiles) are
**bitwise** equal — same bytes, same dtype — not merely numerically
close.  This is the property the whole determinism story rests on: the
engine pre-draws every uniform, so bit-identical kernels mean
bit-identical corpora across backends.

Edge cases the generators are steered into: zero-mass segments (the
sentinel path), single-walker calls, walkers that all share one segment,
and empty frontiers.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.walks.kernels import numba_backend, numpy_backend

MAX_EXAMPLES = 40

unit = st.floats(
    min_value=0.0, max_value=1.0, exclude_max=True, allow_nan=False
)
mass = st.floats(min_value=0.0, max_value=8.0, allow_nan=False, width=64)


def assert_bitwise_equal(a, b):
    """Bitwise equality: identical dtype and identical bytes."""
    a, b = np.asarray(a), np.asarray(b)
    assert a.dtype == b.dtype
    assert a.shape == b.shape
    assert a.tobytes() == b.tobytes()


@st.composite
def segment_layouts(draw, max_groups=6, max_size=5):
    """``(sizes, starts)`` of a contiguous segment layout."""
    sizes = np.asarray(
        draw(
            st.lists(
                st.integers(1, max_size), min_size=1, max_size=max_groups
            )
        ),
        np.int64,
    )
    starts = np.concatenate(([0], np.cumsum(sizes)[:-1])).astype(np.int64)
    return sizes, starts


@st.composite
def walkers_over(draw, num_groups, min_walkers=1, max_walkers=16):
    """Per-walker segment assignments plus two uniform streams."""
    group = np.asarray(
        draw(
            st.lists(
                st.integers(0, num_groups - 1),
                min_size=min_walkers,
                max_size=max_walkers,
            )
        ),
        np.int64,
    )
    u_a = np.asarray(
        draw(
            st.lists(unit, min_size=len(group), max_size=len(group))
        ),
        np.float64,
    )
    u_b = np.asarray(
        draw(
            st.lists(unit, min_size=len(group), max_size=len(group))
        ),
        np.float64,
    )
    return group, u_a, u_b


class TestRegroupPairs:
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(
        keys=st.lists(st.integers(0, 20), min_size=1, max_size=40)
    )
    def test_bitwise_equivalence(self, keys):
        keys = np.asarray(keys, np.int64)
        uk_np, group_np = numpy_backend.regroup_pairs(np, keys)
        uk_py, group_py = numba_backend.regroup_pairs(keys)
        assert_bitwise_equal(uk_np, uk_py)
        assert_bitwise_equal(group_np, group_py)

    def test_single_walker(self):
        keys = np.asarray([7], np.int64)
        uk_np, group_np = numpy_backend.regroup_pairs(np, keys)
        uk_py, group_py = numba_backend.regroup_pairs(keys)
        assert_bitwise_equal(uk_np, uk_py)
        assert_bitwise_equal(group_np, group_py)
        assert uk_np.tolist() == [7] and group_np.tolist() == [0]


class TestGatherSegments:
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(data=st.data(), layout=segment_layouts())
    def test_bitwise_equivalence(self, data, layout):
        sizes, _ = layout
        values = np.asarray(
            data.draw(st.lists(mass, min_size=40, max_size=40)), np.float64
        )
        starts = np.asarray(
            data.draw(
                st.lists(
                    st.integers(0, 40 - int(sizes.max())),
                    min_size=len(sizes),
                    max_size=len(sizes),
                )
            ),
            np.int64,
        )
        out_np = numpy_backend.gather_segments(np, starts, sizes, values)
        out_py = numba_backend.gather_segments(starts, sizes, values)
        assert_bitwise_equal(out_np, out_py)


class TestSegmentedInverseCdf:
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(data=st.data(), layout=segment_layouts())
    def test_bitwise_equivalence_including_zero_mass(self, data, layout):
        sizes, _ = layout
        total = int(sizes.sum())
        # ``mass`` includes 0.0, so whole segments go zero-mass with
        # useful frequency — both backends must agree on the sentinel.
        flat = np.asarray(
            data.draw(st.lists(mass, min_size=total, max_size=total)),
            np.float64,
        )
        group, uniforms, _ = data.draw(walkers_over(len(sizes)))
        picks_np, bad_np = numpy_backend.segmented_inverse_cdf(
            np, flat, sizes, group, uniforms
        )
        picks_py, bad_py = numba_backend.segmented_inverse_cdf(
            flat, sizes, group, uniforms
        )
        assert bad_np == bad_py
        if bad_np == -1:
            assert_bitwise_equal(picks_np, picks_py)
            assert (picks_np >= 0).all()
            assert (picks_np < sizes[group]).all()

    def test_zero_mass_segment_sentinel(self):
        sizes = np.asarray([2, 3], np.int64)
        flat = np.asarray([0.4, 0.6, 0.0, 0.0, 0.0], np.float64)
        group = np.asarray([0], np.int64)
        uniforms = np.asarray([0.5], np.float64)
        _, bad_np = numpy_backend.segmented_inverse_cdf(
            np, flat, sizes, group, uniforms
        )
        _, bad_py = numba_backend.segmented_inverse_cdf(
            flat, sizes, group, uniforms
        )
        assert bad_np == bad_py == 1

    def test_single_walker_single_segment(self):
        sizes = np.asarray([1], np.int64)
        flat = np.asarray([2.5], np.float64)
        group = np.asarray([0], np.int64)
        uniforms = np.asarray([0.999], np.float64)
        picks_np, bad_np = numpy_backend.segmented_inverse_cdf(
            np, flat, sizes, group, uniforms
        )
        picks_py, bad_py = numba_backend.segmented_inverse_cdf(
            flat, sizes, group, uniforms
        )
        assert bad_np == bad_py == -1
        assert_bitwise_equal(picks_np, picks_py)
        assert picks_np.tolist() == [0]


class TestFlatAliasPick:
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(data=st.data())
    def test_bitwise_equivalence(self, data):
        k = data.draw(st.integers(1, 16))
        sizes = np.asarray(
            data.draw(st.lists(st.integers(1, 6), min_size=k, max_size=k)),
            np.int64,
        )
        base = np.asarray(
            data.draw(st.lists(st.integers(0, 30), min_size=k, max_size=k)),
            np.int64,
        )
        table = int((base + sizes).max())
        prob_flat = np.asarray(
            data.draw(st.lists(unit, min_size=table, max_size=table)),
            np.float64,
        )
        alias_flat = np.asarray(
            data.draw(
                st.lists(st.integers(0, 5), min_size=table, max_size=table)
            ),
            np.int64,
        )
        u_column = np.asarray(
            data.draw(st.lists(unit, min_size=k, max_size=k)), np.float64
        )
        u_keep = np.asarray(
            data.draw(st.lists(unit, min_size=k, max_size=k)), np.float64
        )
        out_np = numpy_backend.flat_alias_pick(
            np, prob_flat, alias_flat, base, sizes, u_column, u_keep
        )
        out_py = numba_backend.flat_alias_pick(
            prob_flat, alias_flat, base, sizes, u_column, u_keep
        )
        assert_bitwise_equal(out_np, out_py)


class TestGatheredAliasPick:
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(data=st.data(), layout=segment_layouts())
    def test_bitwise_equivalence(self, data, layout):
        sizes, starts = layout
        table = int(sizes.sum())
        prob_flat = np.asarray(
            data.draw(st.lists(unit, min_size=table, max_size=table)),
            np.float64,
        )
        alias_flat = np.asarray(
            data.draw(
                st.lists(st.integers(0, 5), min_size=table, max_size=table)
            ),
            np.int64,
        )
        group, u_column, u_keep = data.draw(walkers_over(len(sizes)))
        out_np = numpy_backend.gathered_alias_pick(
            np, prob_flat, alias_flat, starts, sizes, group, u_column, u_keep
        )
        out_py = numba_backend.gathered_alias_pick(
            prob_flat, alias_flat, starts, sizes, group, u_column, u_keep
        )
        assert_bitwise_equal(out_np, out_py)


class TestAcceptanceMask:
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(data=st.data(), n=st.integers(1, 32))
    def test_bitwise_equivalence(self, data, n):
        scale = st.floats(min_value=0.0, max_value=3.0, allow_nan=False)
        ratios = np.asarray(
            data.draw(st.lists(scale, min_size=n, max_size=n)), np.float64
        )
        factors = np.asarray(
            data.draw(st.lists(scale, min_size=n, max_size=n)), np.float64
        )
        uniforms = np.asarray(
            data.draw(st.lists(unit, min_size=n, max_size=n)), np.float64
        )
        out_np = numpy_backend.acceptance_mask(np, ratios, factors, uniforms)
        out_py = numba_backend.acceptance_mask(ratios, factors, uniforms)
        assert_bitwise_equal(out_np, out_py)

    def test_single_walker_boundary(self):
        # u == acceptance accepts in both backends (<=, not <).
        ratios = np.asarray([0.5], np.float64)
        factors = np.asarray([1.0], np.float64)
        uniforms = np.asarray([0.5], np.float64)
        out_np = numpy_backend.acceptance_mask(np, ratios, factors, uniforms)
        out_py = numba_backend.acceptance_mask(ratios, factors, uniforms)
        assert_bitwise_equal(out_np, out_py)
        assert out_np.tolist() == [True]


class TestAdvanceFrontier:
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(data=st.data(), n=st.integers(1, 24))
    def test_bitwise_equivalence(self, data, n):
        num_nodes = 30
        degrees = np.asarray(
            data.draw(
                st.lists(st.integers(0, 4), min_size=num_nodes, max_size=num_nodes)
            ),
            np.int64,
        )
        # idx entries must be unique: the vectorized scatter and the loop
        # form are only defined to agree when walkers are distinct.
        idx = np.asarray(
            sorted(
                data.draw(
                    st.sets(st.integers(0, n - 1), min_size=0, max_size=n)
                )
            ),
            np.int64,
        )
        step = np.asarray(
            data.draw(
                st.lists(
                    st.integers(0, num_nodes - 1), min_size=n, max_size=n
                )
            ),
            np.int64,
        )
        previous = np.asarray(
            data.draw(
                st.lists(
                    st.integers(0, num_nodes - 1), min_size=n, max_size=n
                )
            ),
            np.int64,
        )
        current = np.asarray(
            data.draw(
                st.lists(
                    st.integers(0, num_nodes - 1), min_size=n, max_size=n
                )
            ),
            np.int64,
        )
        active = np.asarray(
            data.draw(st.lists(st.booleans(), min_size=n, max_size=n)),
            np.bool_,
        )
        state_np = (previous.copy(), current.copy(), active.copy())
        state_py = (previous.copy(), current.copy(), active.copy())
        numpy_backend.advance_frontier(
            np, idx, step, state_np[0], state_np[1], state_np[2], degrees
        )
        numba_backend.advance_frontier(
            idx, step, state_py[0], state_py[1], state_py[2], degrees
        )
        for a, b in zip(state_np, state_py):
            assert_bitwise_equal(a, b)

    def test_empty_frontier_is_a_no_op(self):
        idx = np.asarray([], np.int64)
        step = np.asarray([3], np.int64)
        previous = np.asarray([1], np.int64)
        current = np.asarray([2], np.int64)
        active = np.asarray([True], np.bool_)
        degrees = np.asarray([1, 1, 1, 0], np.int64)
        numpy_backend.advance_frontier(
            np, idx, step, previous, current, active, degrees
        )
        numba_backend.advance_frontier(
            idx, step, previous, current, active, degrees
        )
        assert previous.tolist() == [1]
        assert current.tolist() == [2]
        assert active.tolist() == [True]
