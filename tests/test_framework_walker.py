"""Unit tests for the walk engine (Algorithm 1)."""

import numpy as np
import pytest

from repro import Node2VecModel, SamplerKind
from repro.exceptions import WalkError
from repro.framework import WalkEngine, build_node_sampler


def make_engine(graph, model, kind=SamplerKind.ALIAS):
    samplers = [
        build_node_sampler(kind, graph, model, v) if graph.degree(v) > 0 else None
        for v in range(graph.num_nodes)
    ]
    return WalkEngine(graph, samplers)


@pytest.fixture
def engine(toy_graph, nv_model):
    return make_engine(toy_graph, nv_model)


class TestWalk:
    def test_walk_length(self, engine, rng):
        walk = engine.walk(0, 10, rng)
        assert len(walk) == 11
        assert walk[0] == 0

    def test_walk_follows_edges(self, engine, toy_graph, rng):
        walk = engine.walk(0, 30, rng)
        for a, b in zip(walk, walk[1:]):
            assert toy_graph.has_edge(int(a), int(b))

    def test_zero_length(self, engine, rng):
        walk = engine.walk(2, 0, rng)
        assert list(walk) == [2]

    def test_invalid_start(self, engine, rng):
        with pytest.raises(WalkError):
            engine.walk(99, 5, rng)

    def test_negative_length(self, engine, rng):
        with pytest.raises(WalkError):
            engine.walk(0, -1, rng)

    def test_dead_end_stops_early(self, rng, nv_model):
        from repro import from_edges

        # Directed: 0 → 1 → 2, then 2 has no successors.
        g = from_edges([(0, 1), (1, 2)], undirected=False, num_nodes=3)
        samplers = [
            build_node_sampler(SamplerKind.NAIVE, g, nv_model, v)
            if g.degree(v) > 0
            else None
            for v in range(3)
        ]
        engine = WalkEngine(g, samplers)
        walk = engine.walk(0, 10, rng)
        assert list(walk) == [0, 1, 2]

    def test_deterministic_given_seed(self, toy_graph, nv_model):
        e1 = make_engine(toy_graph, nv_model)
        e2 = make_engine(toy_graph, nv_model)
        w1 = e1.walk(0, 20, np.random.default_rng(5))
        w2 = e2.walk(0, 20, np.random.default_rng(5))
        assert np.array_equal(w1, w2)


class TestWalkBatches:
    def test_walks_from(self, engine, rng):
        walks = engine.walks_from(0, num_walks=5, length=10, rng=rng)
        assert len(walks) == 5
        assert all(w[0] == 0 for w in walks)

    def test_walks_all_nodes(self, engine, toy_graph, rng):
        walks = engine.walks_all_nodes(num_walks=3, length=5, rng=rng)
        assert len(walks) == 3 * toy_graph.num_nodes

    def test_walks_all_nodes_skips_isolated(self, rng, nv_model):
        from repro import from_edges

        g = from_edges([(0, 1)], num_nodes=3)
        samplers = [
            build_node_sampler(SamplerKind.NAIVE, g, nv_model, v)
            if g.degree(v) > 0
            else None
            for v in range(3)
        ]
        engine = WalkEngine(g, samplers)
        walks = engine.walks_all_nodes(num_walks=2, length=3, rng=rng)
        assert len(walks) == 4  # nodes 0 and 1 only

    def test_restricted_start_nodes(self, engine, rng):
        walks = engine.walks_all_nodes(num_walks=1, length=4, nodes=[2, 3], rng=rng)
        assert len(walks) == 2
        assert {int(w[0]) for w in walks} == {2, 3}


class TestWalkWithRestart:
    def test_decay_zero_stops_immediately(self, engine, rng):
        walk = engine.walk_with_restart(0, decay=0.0, max_length=10, rng=rng)
        assert list(walk) == [0]

    def test_decay_one_runs_to_max(self, engine, rng):
        walk = engine.walk_with_restart(0, decay=1.0, max_length=10, rng=rng)
        assert len(walk) == 11

    def test_invalid_decay(self, engine, rng):
        with pytest.raises(WalkError):
            engine.walk_with_restart(0, decay=1.5, max_length=5, rng=rng)

    def test_average_length_matches_geometric(self, engine):
        rng = np.random.default_rng(0)
        decay = 0.5
        lengths = [
            len(engine.walk_with_restart(0, decay=decay, max_length=100, rng=rng)) - 1
            for _ in range(4000)
        ]
        # Steps ~ geometric with mean decay/(1-decay) = 1 for decay=0.5.
        assert np.mean(lengths) == pytest.approx(1.0, abs=0.1)


class TestEngineValidation:
    def test_length_mismatch(self, toy_graph, nv_model):
        with pytest.raises(WalkError):
            WalkEngine(toy_graph, [None, None])

    def test_missing_sampler_for_connected_node(self, toy_graph):
        with pytest.raises(WalkError, match="no sampler"):
            WalkEngine(toy_graph, [None] * toy_graph.num_nodes)
