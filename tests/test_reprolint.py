"""Tests for the ``reprolint`` static analyser itself.

Per-rule positive/negative fixtures live in ``tests/analysis_fixtures/``
(deliberately *not* named ``test_*.py`` so pytest never collects them,
and excluded from ruff — they exist to be parsed, not imported).
"""

import json
from pathlib import Path

import pytest

from repro.analysis.lint import (
    Baseline,
    Finding,
    LintConfigError,
    iter_rules,
    lint_main,
    run_lint,
)
from repro.analysis.lint.baseline import BaselineEntry
from repro.analysis.lint.engine import RULE_REGISTRY, Rule, register_rule
from repro.analysis.lint.runner import (
    changed_files,
    default_baseline_path,
    discover_files,
)

FIXTURES = Path(__file__).resolve().parent / "analysis_fixtures"
REPO_ROOT = default_baseline_path().parent


def lint_fixture(name, rules):
    """Lint one fixture file with selected rules and no baseline."""
    result, _ = run_lint(
        [FIXTURES / name], rules=rules, baseline=Baseline(), root=FIXTURES
    )
    return result


# ----------------------------------------------------------------------
# per-rule detection: bad fixture fires, good fixture stays silent
# ----------------------------------------------------------------------
RULE_CASES = [
    ("RNG001", "rng_bad.py", "rng_good.py", 4),
    ("TIME001", "time_bad.py", "time_good.py", 2),
    ("TIME001", "time_bad_identity.py", "time_good.py", 2),
    ("TIME002", "time_retry_bad.py", "time_retry_good.py", 2),
    ("TIME002", "time_retry_loop_bad.py", "time_retry_good.py", 2),
    ("MP001", "mp_bad.py", "mp_good.py", 3),
    ("HOT001", "hot_bad.py", "hot_good.py", 3),
    ("HOT002", "hot_xp_bad.py", "hot_xp_good.py", 3),
    ("MEM001", "mem_bad.py", "mem_good.py", 3),
    ("MEM002", "mem_shard_bad.py", "mem_shard_good.py", 3),
    ("EXC001", "exc_bad.py", "exc_good.py", 3),
    ("DEF001", "def_bad.py", "def_good.py", 4),
    ("DOC001", "doc_bad.py", "doc_good.py", 4),
]


@pytest.mark.parametrize("rule_id,bad,good,count", RULE_CASES)
def test_rule_fires_on_bad_fixture(rule_id, bad, good, count):
    result = lint_fixture(bad, [rule_id])
    assert len(result.new_findings) == count
    assert all(f.rule == rule_id for f in result.new_findings)


@pytest.mark.parametrize("rule_id,bad,good,count", RULE_CASES)
def test_rule_silent_on_good_fixture(rule_id, bad, good, count):
    result = lint_fixture(good, [rule_id])
    assert result.new_findings == []


@pytest.mark.parametrize("rule_id,bad,good,count", RULE_CASES)
def test_cli_exits_nonzero_on_bad_fixture(rule_id, bad, good, count):
    argv = [str(FIXTURES / bad), "--no-baseline", "--check", "--rules", rule_id]
    assert lint_main(argv) == 1
    argv = [str(FIXTURES / good), "--no-baseline", "--check", "--rules", rule_id]
    assert lint_main(argv) == 0


def test_findings_carry_location_and_symbol():
    result = lint_fixture("def_bad.py", ["DEF001"])
    finding = result.new_findings[0]
    assert finding.path.endswith("def_bad.py")
    assert finding.line > 1
    assert finding.symbol == "collect"
    rendered = finding.render()
    assert "DEF001" in rendered and "def_bad.py" in rendered


# ----------------------------------------------------------------------
# suppression directives
# ----------------------------------------------------------------------
def test_inline_and_next_line_suppressions():
    result = lint_fixture("suppressed.py", ["DEF001"])
    assert len(result.new_findings) == 1
    assert result.new_findings[0].symbol == "leak"


def test_file_wide_suppression_is_rule_scoped():
    result = lint_fixture("suppressed_file.py", ["DEF001", "EXC001"])
    rules_fired = [f.rule for f in result.new_findings]
    assert rules_fired == ["EXC001"]  # DEF001 silenced file-wide


def test_module_directive_scopes_module_rules(tmp_path):
    body = "import multiprocessing\n\n\ndef go(xs):\n"
    body += "    with multiprocessing.Pool(2) as pool:\n"
    body += "        return pool.map(lambda x: x, xs)\n"
    plain = tmp_path / "plain.py"
    plain.write_text(body)
    # Without the directive the file is outside MP001's module scope.
    result, _ = run_lint([plain], rules=["MP001"], baseline=Baseline(), root=tmp_path)
    assert result.new_findings == []
    scoped = tmp_path / "scoped.py"
    scoped.write_text("# reprolint: module=walks/parallel.py\n" + body)
    result, _ = run_lint([scoped], rules=["MP001"], baseline=Baseline(), root=tmp_path)
    assert len(result.new_findings) == 1


# ----------------------------------------------------------------------
# baseline round-trip and staleness
# ----------------------------------------------------------------------
def test_baseline_round_trip(tmp_path):
    target = tmp_path / "module.py"
    target.write_text('"""Doc."""\n\n\ndef f(acc=[]):\n    return acc\n')

    result, fingerprinted = run_lint(
        [target], rules=["DEF001"], baseline=Baseline(), root=tmp_path
    )
    assert len(result.new_findings) == 1

    baseline = Baseline.from_findings(fingerprinted)
    baseline_path = tmp_path / "baseline.json"
    baseline.save(baseline_path)
    loaded = Baseline.load(baseline_path)
    assert len(loaded) == 1
    (entry,) = loaded.entries.values()
    assert entry.rule == "DEF001"
    assert entry.justification == "TODO: justify or fix"

    # Same file, baseline applied: clean.
    result, _ = run_lint([target], rules=["DEF001"], baseline=loaded, root=tmp_path)
    assert result.ok
    assert len(result.baselined) == 1 and not result.stale_baseline

    # Fingerprints key on line *text*, not line number: edits above the
    # grandfathered finding must not invalidate the baseline.
    target.write_text(
        '"""Doc."""\n\n# an unrelated comment\n# pushing lines down\n\n'
        "def f(acc=[]):\n    return acc\n"
    )
    result, _ = run_lint([target], rules=["DEF001"], baseline=loaded, root=tmp_path)
    assert result.ok and len(result.baselined) == 1

    # Fixing the violation turns the entry stale.
    target.write_text('"""Doc."""\n\n\ndef f(acc=None):\n    return acc\n')
    result, _ = run_lint([target], rules=["DEF001"], baseline=loaded, root=tmp_path)
    assert result.ok  # no *new* findings...
    assert len(result.stale_baseline) == 1  # ...but --check still fails


def test_baseline_preserves_justifications(tmp_path):
    target = tmp_path / "module.py"
    target.write_text('"""Doc."""\n\n\ndef f(acc=[]):\n    return acc\n')
    _, fingerprinted = run_lint(
        [target], rules=["DEF001"], baseline=Baseline(), root=tmp_path
    )
    first = Baseline.from_findings(fingerprinted)
    (fp,) = first.entries
    first.entries[fp].justification = "intentional shared accumulator"
    regenerated = Baseline.from_findings(fingerprinted, previous=first)
    assert regenerated.entries[fp].justification == "intentional shared accumulator"


def test_baseline_rejects_unknown_version(tmp_path):
    bad = tmp_path / "baseline.json"
    bad.write_text(json.dumps({"version": 99, "findings": []}))
    with pytest.raises(LintConfigError):
        Baseline.load(bad)


def test_duplicate_line_text_fingerprints_differ():
    finding = Finding(
        rule="DEF001", severity="error", path="a.py", line=1, col=1, message="m"
    )
    assert finding.fingerprint("def f(acc=[]):", 0) != finding.fingerprint(
        "def f(acc=[]):", 1
    )
    # ...and the line number itself never enters the hash.
    moved = Finding(
        rule="DEF001", severity="error", path="a.py", line=99, col=1, message="m"
    )
    assert finding.fingerprint("def f(acc=[]):", 0) == moved.fingerprint(
        "def f(acc=[]):", 0
    )


def test_partial_lint_does_not_mark_other_files_stale(tmp_path):
    linted = tmp_path / "linted.py"
    linted.write_text('"""Doc."""\n')
    baseline = Baseline(
        entries={
            "deadbeefdeadbeef": BaselineEntry(
                fingerprint="deadbeefdeadbeef",
                rule="DEF001",
                path="somewhere/else.py",
            )
        }
    )
    result, _ = run_lint([linted], rules=["DEF001"], baseline=baseline, root=tmp_path)
    assert result.ok and not result.stale_baseline


# ----------------------------------------------------------------------
# engine plumbing
# ----------------------------------------------------------------------
def test_unknown_rule_id_raises():
    with pytest.raises(LintConfigError):
        iter_rules(["NOPE999"])


def test_duplicate_rule_registration_rejected():
    class Clone(Rule):
        id = "RNG001"
        name = "clone"
        description = "duplicate"

    with pytest.raises(LintConfigError):
        register_rule(Clone)
    assert type(RULE_REGISTRY["RNG001"]).__name__ == "RngDisciplineRule"


def test_discover_files_skips_caches(tmp_path):
    (tmp_path / "__pycache__").mkdir()
    (tmp_path / "__pycache__" / "junk.py").write_text("x = 1\n")
    (tmp_path / "real.py").write_text("x = 1\n")
    files = discover_files([tmp_path])
    assert [f.name for f in files] == ["real.py"]


def test_discover_files_missing_path_raises():
    with pytest.raises(LintConfigError):
        discover_files([FIXTURES / "does_not_exist.py"])


def test_expected_rule_catalogue():
    expected = {
        "RNG001",
        "TIME001",
        "MP001",
        "HOT001",
        "HOT002",
        "MEM001",
        "MEM002",
        "EXC001",
        "DEF001",
        "DOC001",
    }
    assert expected <= set(RULE_REGISTRY)


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in RULE_REGISTRY:
        assert rule_id in out


def test_cli_json_format(capsys):
    argv = [
        str(FIXTURES / "def_bad.py"),
        "--no-baseline",
        "--rules",
        "DEF001",
        "--format",
        "json",
    ]
    assert lint_main(argv) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    assert payload["files_checked"] == 1
    assert len(payload["new_findings"]) == 4
    assert all(f["rule"] == "DEF001" for f in payload["new_findings"])


def test_cli_unknown_rule_is_config_error():
    assert lint_main(["--rules", "NOPE999", str(FIXTURES / "def_good.py")]) == 2


def test_cli_missing_path_is_config_error(tmp_path):
    assert lint_main([str(tmp_path / "missing.py")]) == 2


def test_cli_update_baseline_round_trip(tmp_path, capsys):
    target = tmp_path / "module.py"
    target.write_text('"""Doc."""\n\n\ndef f(acc=[]):\n    return acc\n')
    baseline_path = tmp_path / "baseline.json"
    argv = [
        str(target),
        "--rules",
        "DEF001",
        "--baseline",
        str(baseline_path),
    ]
    assert lint_main(argv + ["--update-baseline"]) == 0
    assert baseline_path.exists()
    capsys.readouterr()
    # With the freshly written baseline the same lint is clean.
    assert lint_main(argv + ["--check"]) == 0


# ----------------------------------------------------------------------
# self-check: the linter's own verdict on this repository
# ----------------------------------------------------------------------
def test_self_check_src_repro_clean_modulo_baseline():
    result, _ = run_lint(
        [REPO_ROOT / "src" / "repro"], baseline=default_baseline_path()
    )
    assert result.new_findings == [], "\n".join(
        f.render() for f in result.new_findings
    )
    assert result.stale_baseline == []
    # The step-centric kernel refactor retired the one grandfathered
    # HOT001 entry (the rejection loop now lives in a non-@hot_path
    # driver); the default rule set carries no baselined debt.
    assert result.baselined == []


def test_committed_baseline_entries_are_justified():
    baseline = Baseline.load(default_baseline_path())
    for entry in baseline.entries.values():
        assert entry.justification
        assert "TODO" not in entry.justification


# ----------------------------------------------------------------------
# CLI edge cases: broken inputs must exit 2, never crash or pass
# ----------------------------------------------------------------------
def test_cli_corrupt_baseline_is_config_error(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    baseline.write_text("{not json")
    argv = [str(FIXTURES / "def_good.py"), "--baseline", str(baseline)]
    assert lint_main(argv) == 2
    assert "cannot read baseline" in capsys.readouterr().err


def test_cli_unsupported_baseline_version_is_config_error(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps({"version": 99, "findings": []}))
    argv = [str(FIXTURES / "def_good.py"), "--baseline", str(baseline)]
    assert lint_main(argv) == 2
    assert "version" in capsys.readouterr().err


def test_missing_baseline_file_loads_empty():
    baseline = Baseline.load(Path("no-such-reprolint-baseline.json"))
    assert len(baseline) == 0


def test_cli_syntax_error_is_config_error(tmp_path, capsys):
    target = tmp_path / "broken.py"
    target.write_text("def f(:\n")
    assert lint_main([str(target), "--no-baseline"]) == 2
    assert "cannot parse" in capsys.readouterr().err


def test_cli_unknown_flow_style_rule_is_config_error(capsys):
    argv = ["--rules", "FLOW-NOPE", str(FIXTURES / "def_good.py")]
    assert lint_main(argv) == 2


def test_empty_file_lints_clean_even_with_flow(tmp_path):
    target = tmp_path / "empty.py"
    target.write_text("")
    result, _ = run_lint(
        [target], rules=["RNG001"], baseline=Baseline(), root=tmp_path, flow=True
    )
    assert result.new_findings == []
    assert result.files == ["empty.py"]


def test_cli_changed_with_unknown_ref_is_config_error(capsys):
    argv = [str(FIXTURES / "def_good.py"), "--changed", "no-such-ref-xyz"]
    assert lint_main(argv) == 2
    assert "no-such-ref-xyz" in capsys.readouterr().err


def test_changed_files_lists_modified_python(tmp_path):
    import subprocess

    def git(*argv):
        subprocess.run(
            ["git", "-c", "user.email=t@t.invalid", "-c", "user.name=t", *argv],
            cwd=tmp_path,
            check=True,
            capture_output=True,
        )

    git("init", "-q")
    (tmp_path / "tracked.py").write_text("X = 1\n")
    (tmp_path / "notes.txt").write_text("not python\n")
    git("add", "tracked.py", "notes.txt")
    git("commit", "-qm", "init")
    (tmp_path / "tracked.py").write_text("X = 2\n")  # modified
    (tmp_path / "fresh.py").write_text("Y = 1\n")  # untracked
    changed = changed_files("HEAD", root=tmp_path)
    assert changed == {"tracked.py", "fresh.py"}


# ----------------------------------------------------------------------
# baseline fingerprints: whitespace insensitivity and v1 -> v2 migration
# ----------------------------------------------------------------------
def test_v2_fingerprint_survives_reformatting():
    finding = Finding(
        rule="X001", severity="error", path="p.py", line=1, col=1, message="m"
    )
    assert finding.fingerprint("def f(acc=[]):") == finding.fingerprint(
        "  def f( acc = [] ):  "
    )
    # The legacy scheme only collapsed runs, so reformatting broke it.
    assert finding.fingerprint(
        "def f(acc=[]):", version=1
    ) != finding.fingerprint("def f( acc = [] ):", version=1)


def test_v1_baseline_matches_then_migrates_to_v2(tmp_path, capsys):
    target = tmp_path / "module.py"
    target.write_text('"""Doc."""\n\n\ndef f(acc=[]):\n    return acc\n')
    result, _ = run_lint(
        [target], rules=["DEF001"], baseline=Baseline()
    )
    (finding,) = result.new_findings
    line_text = target.read_text().splitlines()[finding.line - 1]
    old_print = finding.fingerprint(line_text, 0, version=1)
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(
        json.dumps(
            {
                "version": 1,
                "findings": [
                    {
                        "fingerprint": old_print,
                        "rule": finding.rule,
                        "path": finding.path,
                        "symbol": finding.symbol,
                        "justification": "kept for the test",
                    }
                ],
            }
        )
    )
    argv = [
        str(target),
        "--rules",
        "DEF001",
        "--baseline",
        str(baseline_path),
    ]
    # Not yet migrated: the legacy fingerprint still matches.
    assert lint_main(argv + ["--check"]) == 0
    # --update-baseline rewrites to version 2, keeping the justification.
    assert lint_main(argv + ["--update-baseline"]) == 0
    payload = json.loads(baseline_path.read_text())
    assert payload["version"] == 2
    (entry,) = payload["findings"]
    assert entry["justification"] == "kept for the test"
    assert entry["fingerprint"] != old_print
    capsys.readouterr()
    assert lint_main(argv + ["--check"]) == 0


def test_committed_baseline_is_current_version():
    payload = json.loads(default_baseline_path().read_text())
    assert payload["version"] == 2
