"""Unit tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.exceptions import GraphFormatError
from repro.graph import (
    barabasi_albert_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    powerlaw_cluster_graph,
    star_graph,
    watts_strogatz_graph,
)
from repro.graph.stats import triangle_count


class TestErdosRenyi:
    def test_edge_count_near_expectation(self):
        n, p = 200, 0.1
        g = erdos_renyi_graph(n, p, rng=0)
        expected = p * n * (n - 1) / 2
        stored = g.num_edges / 2
        assert 0.7 * expected < stored < 1.3 * expected

    def test_p_zero_empty(self):
        g = erdos_renyi_graph(50, 0.0, rng=0)
        assert g.num_edges == 0

    def test_p_one_complete(self):
        g = erdos_renyi_graph(10, 1.0, rng=0)
        assert g.num_edges == 10 * 9

    def test_deterministic_with_seed(self):
        assert erdos_renyi_graph(50, 0.1, rng=5) == erdos_renyi_graph(50, 0.1, rng=5)

    def test_invalid_probability(self):
        with pytest.raises(GraphFormatError):
            erdos_renyi_graph(10, 1.5)

    def test_no_self_loops(self):
        g = erdos_renyi_graph(60, 0.2, rng=1)
        assert all(not g.has_edge(v, v) for v in range(g.num_nodes))


class TestBarabasiAlbert:
    def test_node_and_edge_count(self):
        g = barabasi_albert_graph(100, 3, rng=0)
        assert g.num_nodes == 100
        # (n - attach) new nodes each add `attach` undirected edges.
        assert g.num_edges == 2 * (100 - 3) * 3

    def test_minimum_degree(self):
        g = barabasi_albert_graph(100, 3, rng=0)
        degs = g.degrees
        # Every non-seed node attaches to 3 targets.
        assert degs[3:].min() >= 3

    def test_power_law_tail(self):
        g = barabasi_albert_graph(400, 3, rng=0)
        # Power-law graphs have hubs far above the average.
        assert g.max_degree > 4 * g.average_degree

    def test_invalid_parameters(self):
        with pytest.raises(GraphFormatError):
            barabasi_albert_graph(5, 5)
        with pytest.raises(GraphFormatError):
            barabasi_albert_graph(10, 0)

    def test_deterministic(self):
        assert barabasi_albert_graph(50, 2, rng=3) == barabasi_albert_graph(50, 2, rng=3)


class TestPowerlawCluster:
    def test_basic_shape(self):
        g = powerlaw_cluster_graph(100, 3, 0.5, rng=0)
        assert g.num_nodes == 100
        assert g.num_edges == 2 * (100 - 3) * 3

    def test_triangle_prob_increases_clustering(self):
        low = powerlaw_cluster_graph(150, 3, 0.0, rng=2)
        high = powerlaw_cluster_graph(150, 3, 0.9, rng=2)
        assert triangle_count(high) > triangle_count(low)

    def test_invalid_triangle_prob(self):
        with pytest.raises(GraphFormatError):
            powerlaw_cluster_graph(20, 2, 1.5)


class TestWattsStrogatz:
    def test_no_rewire_is_ring(self):
        g = watts_strogatz_graph(20, 4, 0.0, rng=0)
        assert np.all(g.degrees == 4)

    def test_rewire_preserves_edge_count(self):
        g = watts_strogatz_graph(50, 4, 0.3, rng=0)
        assert g.num_edges == 50 * 4  # stored directed

    def test_odd_nearest_rejected(self):
        with pytest.raises(GraphFormatError):
            watts_strogatz_graph(20, 3, 0.1)


class TestDeterministicShapes:
    def test_complete(self):
        g = complete_graph(6)
        assert np.all(g.degrees == 5)

    def test_star(self):
        g = star_graph(7)
        assert g.degree(0) == 7
        assert all(g.degree(v) == 1 for v in range(1, 8))

    def test_cycle(self):
        g = cycle_graph(9)
        assert np.all(g.degrees == 2)
        assert g.has_edge(8, 0)

    def test_cycle_too_small(self):
        with pytest.raises(GraphFormatError):
            cycle_graph(2)

    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.num_nodes == 12
        # Interior nodes have degree 4, corners 2.
        assert g.degree(0) == 2
        assert g.degree(5) == 4

    def test_grid_invalid(self):
        with pytest.raises(GraphFormatError):
            grid_graph(0, 4)
