"""Unit tests for the dataset registry."""

import pytest

from repro.datasets import (
    PAPER_GRAPHS,
    available_datasets,
    figure5_toy_graph,
    load_dataset,
    paper_graph_info,
)
from repro.exceptions import DatasetError


class TestPaperInfo:
    def test_all_six_registered(self):
        assert len(available_datasets()) == 6
        assert "twitter" in available_datasets()

    def test_table2_values(self):
        info = paper_graph_info("twitter")
        assert info.num_nodes == 41_600_000
        assert info.num_edges == 2_400_000_000
        assert info.average_degree == pytest.approx(39.1)

    def test_stored_edges(self):
        assert paper_graph_info("youtube").stored_edges == 12_000_000

    def test_case_insensitive(self):
        assert paper_graph_info("Flickr").name == "flickr"

    def test_unknown_dataset(self):
        with pytest.raises(DatasetError):
            paper_graph_info("facebook")


class TestStandins:
    @pytest.mark.parametrize("name", sorted(PAPER_GRAPHS))
    def test_loads_and_matches_degree_shape(self, name):
        graph = load_dataset(name, scale=0.3, rng=0)
        info = paper_graph_info(name)
        assert graph.num_nodes > 0
        # Average degree within 2x of the original's (the generators use
        # attach ≈ d_avg / 2, boundary effects shrink small graphs).
        assert 0.5 * info.average_degree < graph.average_degree < 2 * info.average_degree

    def test_scale_changes_size(self):
        small = load_dataset("youtube", scale=0.2, rng=0)
        large = load_dataset("youtube", scale=0.5, rng=0)
        assert large.num_nodes > small.num_nodes

    def test_deterministic(self):
        assert load_dataset("blogcatalog", rng=4) == load_dataset("blogcatalog", rng=4)

    def test_invalid_scale(self):
        with pytest.raises(DatasetError):
            load_dataset("youtube", scale=0)

    def test_unknown_name(self):
        with pytest.raises(DatasetError):
            load_dataset("reddit")


class TestFigure5Graph:
    def test_structure(self):
        g = figure5_toy_graph()
        assert g.num_nodes == 4
        assert g.num_edges == 8
        assert list(g.degrees) == [3, 1, 2, 2]
        assert g.has_edge(2, 3)
        assert not g.has_edge(1, 2)
