"""Smoke tests: every example script runs to completion.

Examples are documentation that executes; this keeps them from rotting.
Each runs in a subprocess with the repo's interpreter and must exit 0
without writing to stderr (warnings excepted).
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_all_examples_covered():
    """The README promises >= 3 runnable examples; we ship more."""
    assert len(EXAMPLES) >= 3
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
