"""Unit tests for the adaptive optimizer (dynamic budgets, §5.3)."""

import numpy as np
import pytest

from repro import (
    AdaptiveOptimizer,
    CostParams,
    build_cost_table,
    compute_bounding_constants,
    lp_greedy,
)
from repro.exceptions import InfeasibleBudgetError
from repro.framework import linear_budget_trace

FIGURE5_PARAMS = CostParams(float_bytes=4, int_bytes=4, fixed_check_cost=1.0)


@pytest.fixture
def toy_table(toy_graph, nv_model):
    constants = compute_bounding_constants(toy_graph, nv_model)
    return build_cost_table(toy_graph, constants, FIGURE5_PARAMS)


@pytest.fixture
def medium_table(medium_graph, nv_model):
    constants = compute_bounding_constants(medium_graph, nv_model)
    return build_cost_table(medium_graph, constants, CostParams())


class TestInitial:
    def test_matches_lp_greedy(self, toy_table):
        adaptive = AdaptiveOptimizer(toy_table, 188)
        reference = lp_greedy(toy_table, 188)
        assert np.array_equal(adaptive.assignment.samplers, reference.samplers)
        assert adaptive.used_memory == pytest.approx(reference.used_memory)

    def test_infeasible_initial_budget(self, toy_table):
        with pytest.raises(InfeasibleBudgetError):
            AdaptiveOptimizer(toy_table, 1.0)


class TestIncrease:
    def test_increase_equals_from_scratch(self, medium_table):
        max_mem = medium_table.max_memory()
        adaptive = AdaptiveOptimizer(medium_table, 0.1 * max_mem)
        for ratio in (0.2, 0.35, 0.6, 1.0):
            update = adaptive.set_budget(ratio * max_mem)
            reference = lp_greedy(medium_table, ratio * max_mem)
            assert np.array_equal(adaptive.assignment.samplers, reference.samplers)
            assert update.steps_reverted == 0

    def test_noop_increase(self, toy_table):
        adaptive = AdaptiveOptimizer(toy_table, 188)
        update = adaptive.set_budget(189)  # too small for the next step
        assert update.steps_applied == 0
        assert update.steps_touched == 0

    def test_update_cheaper_than_rebuild(self, medium_table):
        max_mem = medium_table.max_memory()
        adaptive = AdaptiveOptimizer(medium_table, 0.5 * max_mem)
        initial_steps = len(adaptive.trace)
        update = adaptive.set_budget(0.6 * max_mem)
        # The incremental update touches strictly fewer steps than the
        # trace built from scratch at the larger budget.
        assert update.steps_applied < initial_steps


class TestDecrease:
    def test_decrease_equals_from_scratch(self, medium_table):
        max_mem = medium_table.max_memory()
        adaptive = AdaptiveOptimizer(medium_table, max_mem)
        for ratio in (0.7, 0.4, 0.15):
            update = adaptive.set_budget(ratio * max_mem)
            reference = lp_greedy(medium_table, ratio * max_mem)
            assert np.array_equal(adaptive.assignment.samplers, reference.samplers)
            assert update.steps_applied == 0
            assert adaptive.used_memory <= ratio * max_mem

    def test_decrease_below_minimum_rejected(self, toy_table):
        adaptive = AdaptiveOptimizer(toy_table, 188)
        with pytest.raises(InfeasibleBudgetError):
            adaptive.set_budget(1.0)
        # State is untouched after the failed update.
        assert adaptive.budget == 188

    def test_decrease_to_minimum(self, toy_table):
        adaptive = AdaptiveOptimizer(toy_table, 188)
        adaptive.set_budget(12)
        assert adaptive.used_memory == pytest.approx(12)
        assert len(adaptive.trace) == 0


class TestRoundTrip:
    def test_up_down_cycle_consistent(self, medium_table):
        """Following the Figure 9 trace always matches from-scratch."""
        max_mem = medium_table.max_memory()
        trace = linear_budget_trace(max_mem, steps=6)
        adaptive = AdaptiveOptimizer(medium_table, trace[0])
        for budget in trace[1:]:
            adaptive.set_budget(budget)
            reference = lp_greedy(medium_table, budget)
            assert np.array_equal(adaptive.assignment.samplers, reference.samplers)

    def test_budget_property_tracks(self, toy_table):
        adaptive = AdaptiveOptimizer(toy_table, 188)
        adaptive.set_budget(120)
        assert adaptive.budget == 120

    def test_trace_is_copy(self, toy_table):
        adaptive = AdaptiveOptimizer(toy_table, 188)
        trace = adaptive.trace
        trace.clear()
        assert len(adaptive.trace) > 0


class TestBudgetUpdateStats:
    def test_steps_touched(self, medium_table):
        max_mem = medium_table.max_memory()
        adaptive = AdaptiveOptimizer(medium_table, 0.3 * max_mem)
        up = adaptive.set_budget(0.5 * max_mem)
        assert up.steps_touched == up.steps_applied
        down = adaptive.set_budget(0.3 * max_mem)
        assert down.steps_touched == down.steps_reverted
        assert down.steps_reverted == up.steps_applied
