"""Tests on directed graphs.

The paper processes its datasets into undirected form, but nothing in the
algorithms requires symmetry: CSR stores any directed adjacency, models
consume out-neighbourhoods, and walks follow directed edges.  These tests
pin that behaviour down (including the asymmetric corner cases).
"""

import numpy as np
import pytest

from repro import (
    AutoregressiveModel,
    MemoryAwareFramework,
    Node2VecModel,
    SamplerKind,
    from_edges,
)
from repro.bounding import compute_bounding_constants, edge_bounding_constant
from repro.sampling.utils import empirical_distribution, total_variation_distance


@pytest.fixture(scope="module")
def directed_graph():
    """A strongly connected directed graph with asymmetric structure."""
    edges = [
        (0, 1), (1, 2), (2, 0),          # directed triangle
        (0, 3), (3, 4), (4, 0),          # second cycle through 0
        (2, 3), (1, 4), (4, 1),          # cross edges (4<->1 symmetric)
    ]
    return from_edges(edges, undirected=False, num_nodes=5)


class TestDirectedStructure:
    def test_asymmetry_preserved(self, directed_graph):
        assert directed_graph.has_edge(0, 1)
        assert not directed_graph.has_edge(1, 0)
        assert directed_graph.has_edge(1, 4) and directed_graph.has_edge(4, 1)

    def test_out_degrees(self, directed_graph):
        assert directed_graph.degree(0) == 2  # -> 1, 3
        assert directed_graph.degree(2) == 2  # -> 0, 3


class TestDirectedModels:
    def test_node2vec_distance_classes(self, directed_graph):
        """l_uz uses u's OUT-neighbourhood on a directed graph."""
        model = Node2VecModel(a=0.25, b=4.0)
        # From edge (0, 1): candidates of 1 are {2, 4}.
        # 0 -> 2? no (2 -> 0 only) => distance 2 => w/b.
        # 0 -> 4? no => distance 2 => w/b.
        p = model.e2e_distribution(directed_graph, 0, 1)
        assert np.allclose(p, [0.5, 0.5])

    def test_node2vec_return_bias(self, directed_graph):
        model = Node2VecModel(a=0.1, b=1.0)
        # From edge (4, 1): candidates of 1 are {2, 4}; z = 4 is a return.
        p = model.e2e_distribution(directed_graph, 4, 1)
        neighbors = list(directed_graph.neighbors(1))
        assert p[neighbors.index(4)] > p[neighbors.index(2)]

    def test_autoregressive_uses_out_probs(self, directed_graph):
        model = AutoregressiveModel(alpha=0.5)
        # From edge (2, 0): candidates of 0 are {1, 3}; 2 -> 3 exists so
        # candidate 3 gets extra mass, 2 -> 1 does not exist.
        p = model.e2e_distribution(directed_graph, 2, 0)
        neighbors = list(directed_graph.neighbors(0))
        assert p[neighbors.index(3)] > p[neighbors.index(1)]

    def test_bounding_constants_finite(self, directed_graph):
        model = Node2VecModel(0.25, 4.0)
        constants = compute_bounding_constants(directed_graph, model)
        assert np.all(constants.values >= 1.0)
        assert np.all(np.isfinite(constants.values))
        for u, v, _ in directed_graph.edges():
            assert edge_bounding_constant(directed_graph, model, u, v) >= 1.0


class TestDirectedFramework:
    @pytest.mark.parametrize("kind", list(SamplerKind))
    def test_samplers_match_exact_e2e(self, directed_graph, kind, rng):
        from repro.framework import build_node_sampler

        model = Node2VecModel(0.5, 2.0)
        u, v = 0, 1
        sampler = build_node_sampler(kind, directed_graph, model, v)
        exact = model.e2e_distribution(directed_graph, u, v)
        samples = np.array([sampler.sample(u, rng) for _ in range(4000)])
        positions = np.searchsorted(directed_graph.neighbors(v), samples)
        emp = empirical_distribution(positions, directed_graph.degree(v))
        assert total_variation_distance(emp, exact) < 0.05

    def test_full_framework_walks(self, directed_graph):
        model = Node2VecModel(0.25, 4.0)
        fw = MemoryAwareFramework(directed_graph, model, budget=1e5, rng=0)
        walk = fw.walk(0, 30, rng=1)
        assert len(walk) == 31
        for a, b in zip(walk, walk[1:]):
            assert directed_graph.has_edge(int(a), int(b))

    def test_rejection_previous_not_in_neighborhood(self, directed_graph, rng):
        """On directed graphs the previous node is generally NOT an
        out-neighbour of the current one; the rejection sampler must fall
        back to on-the-fly factors rather than break."""
        from repro.framework import RejectionNodeSampler

        model = AutoregressiveModel(0.5)
        sampler = RejectionNodeSampler(directed_graph, model, 1)
        # 0 -> 1 exists but 1 -> 0 does not: previous=0 is outside N(1).
        sample = sampler.sample(0, rng)
        assert sample in set(int(z) for z in directed_graph.neighbors(1))

    def test_batch_walks_directed(self, directed_graph):
        from repro.walks.batch import batch_walks

        model = Node2VecModel(0.5, 2.0)
        corpus = batch_walks(directed_graph, model, num_walks=5, length=12, rng=3)
        for walk in corpus:
            for a, b in zip(walk, walk[1:]):
                assert directed_graph.has_edge(int(a), int(b))
