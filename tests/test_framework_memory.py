"""Unit tests for memory budgets, meters, and budget traces."""

import pytest

from repro import MemoryBudget, MemoryMeter, SimulatedOOMError, format_bytes
from repro.exceptions import BudgetError
from repro.framework import linear_budget_trace


class TestFormatBytes:
    def test_units(self):
        assert format_bytes(512) == "512B"
        assert format_bytes(1_500) == "1.5KB"
        assert format_bytes(2_000_000) == "2.0MB"
        assert format_bytes(1_796e12) == "1.8PB"
        assert format_bytes(379e12) == "379.0TB"

    def test_zero(self):
        assert format_bytes(0) == "0B"


class TestMemoryBudget:
    def test_from_ratio(self):
        budget = MemoryBudget.from_ratio(1000, 0.1)
        assert budget.total_bytes == 100
        assert budget.ratio == pytest.approx(0.1)

    def test_absolute(self):
        budget = MemoryBudget(2048)
        assert budget.ratio is None
        assert "2.0KB" in str(budget)

    def test_negative_rejected(self):
        with pytest.raises(BudgetError):
            MemoryBudget(-1)
        with pytest.raises(BudgetError):
            MemoryBudget.from_ratio(100, -0.5)

    def test_str_with_ratio(self):
        budget = MemoryBudget.from_ratio(1000, 0.5)
        assert "0.50x ref" in str(budget)


class TestMemoryMeter:
    def test_charge_and_release(self):
        meter = MemoryMeter()
        meter.charge(100)
        meter.charge(50)
        assert meter.used_bytes == 150
        meter.release(100)
        assert meter.used_bytes == 50
        assert meter.peak_bytes == 150

    def test_oom_gate(self):
        meter = MemoryMeter(physical_bytes=100)
        meter.charge(80)
        with pytest.raises(SimulatedOOMError) as exc:
            meter.charge(30, what="alias tables")
        assert exc.value.required_bytes == 110
        assert exc.value.available_bytes == 100
        assert "alias tables" in str(exc.value)
        # Failed charge does not mutate state.
        assert meter.used_bytes == 80

    def test_unlimited_meter(self):
        meter = MemoryMeter()
        meter.charge(1e18)
        assert meter.used_bytes == 1e18

    def test_negative_amounts_rejected(self):
        meter = MemoryMeter()
        with pytest.raises(BudgetError):
            meter.charge(-1)
        with pytest.raises(BudgetError):
            meter.release(-1)

    def test_release_clamps_at_zero(self):
        meter = MemoryMeter()
        meter.charge(10)
        meter.release(100)
        assert meter.used_bytes == 0

    def test_reset_keeps_peak(self):
        meter = MemoryMeter()
        meter.charge(42)
        meter.reset()
        assert meter.used_bytes == 0
        assert meter.peak_bytes == 42


class TestBudgetTrace:
    def test_figure9_shape(self):
        trace = linear_budget_trace(100, steps=10)
        assert len(trace) == 19
        assert trace[0] == pytest.approx(10)
        assert max(trace) == pytest.approx(100)
        assert trace[-1] == pytest.approx(10)
        # Monotone up then down.
        peak = trace.index(max(trace))
        assert trace[:peak + 1] == sorted(trace[:peak + 1])
        assert trace[peak:] == sorted(trace[peak:], reverse=True)

    def test_single_step(self):
        assert linear_budget_trace(50, steps=1) == [50]

    def test_invalid(self):
        with pytest.raises(BudgetError):
            linear_budget_trace(0)
        with pytest.raises(BudgetError):
            linear_budget_trace(10, steps=0)
