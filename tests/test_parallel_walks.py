"""Tests for process-parallel walk generation."""

import hashlib

import numpy as np
import pytest

from repro import MemoryAwareFramework, Node2VecModel
from repro.exceptions import WalkError
from repro.sampling.utils import total_variation_distance
from repro.walks import parallel_walks


@pytest.fixture(scope="module")
def framework(medium_graph):
    return MemoryAwareFramework(
        medium_graph, Node2VecModel(0.5, 2.0), budget=1e6, rng=0
    )


class TestParallelWalks:
    def test_walk_counts(self, framework, medium_graph):
        corpus = parallel_walks(
            framework.walk_engine, num_walks=2, length=5, workers=2, rng=0
        )
        non_isolated = int((medium_graph.degrees > 0).sum())
        assert len(corpus) == 2 * non_isolated

    def test_walks_follow_edges(self, framework, medium_graph):
        corpus = parallel_walks(
            framework.walk_engine, num_walks=1, length=8, workers=2, rng=0
        )
        for walk in list(corpus)[:50]:
            for a, b in zip(walk, walk[1:]):
                assert medium_graph.has_edge(int(a), int(b))

    def test_deterministic_across_worker_counts(self, framework):
        kwargs = dict(num_walks=1, length=6, chunk_size=16, rng=42)
        seq = parallel_walks(framework.walk_engine, workers=1, **kwargs)
        par = parallel_walks(framework.walk_engine, workers=3, **kwargs)
        assert len(seq) == len(par)
        for a, b in zip(seq, par):
            assert np.array_equal(a, b)

    def test_restricted_nodes(self, framework):
        corpus = parallel_walks(
            framework.walk_engine, num_walks=3, length=4,
            nodes=[0, 1, 2], workers=2, rng=0,
        )
        assert len(corpus) == 9
        starts = {int(w[0]) for w in corpus}
        assert starts == {0, 1, 2}

    def test_distribution_matches_sequential(self):
        """Parallel generation draws from the same e2e distributions.

        Uses a small dense graph so individual (u, v) contexts accumulate
        enough transitions for a meaningful comparison.
        """
        from repro.graph import powerlaw_cluster_graph

        graph = powerlaw_cluster_graph(25, 3, 0.5, rng=5)
        model = Node2VecModel(0.5, 2.0)
        fw = MemoryAwareFramework(graph, model, budget=1e6, rng=0)
        corpus = parallel_walks(
            fw.walk_engine, num_walks=80, length=15, workers=4, rng=7
        )
        counts = corpus.second_order_transition_counts()
        checked = 0
        for (u, v), counter in counts.items():
            total = sum(counter.values())
            if total < 200:
                continue
            neighbors = graph.neighbors(v)
            empirical = np.array(
                [counter.get(int(z), 0) for z in neighbors], dtype=np.float64
            )
            exact = model.e2e_distribution(graph, u, v)
            assert total_variation_distance(empirical / total, exact) < 0.15
            checked += 1
        assert checked > 0

    def test_regression_corpus_hash(self, framework):
        """Pins the exact corpus for a fixed seed, for any worker count.

        Seeds are drawn one per chunk before the sequential-vs-pool
        decision (see the determinism contract in
        ``repro/walks/parallel.py``), so this hash must never move when
        the dispatch, retry, or checkpoint machinery changes.  If it does,
        every previously generated corpus silently loses reproducibility —
        treat a change here as a breaking change, not a test update.
        """
        expected = (
            "97e2f60749c8e359e6799b20a4f6815d11a0e1a8989abb4ea56c19d154241633"
        )
        for workers in (1, 3):
            corpus = parallel_walks(
                framework.walk_engine,
                num_walks=1,
                length=10,
                workers=workers,
                chunk_size=16,
                rng=2024,
            )
            payload = "\n".join(
                " ".join(map(str, w.tolist())) for w in corpus
            )
            digest = hashlib.sha256(payload.encode()).hexdigest()
            assert digest == expected, f"corpus hash moved (workers={workers})"

    def test_invalid_parameters(self, framework):
        with pytest.raises(WalkError):
            parallel_walks(framework.walk_engine, num_walks=0, length=5)
        with pytest.raises(WalkError):
            parallel_walks(
                framework.walk_engine, num_walks=1, length=5, chunk_size=0
            )
