"""Property-based tests for :class:`repro.walks.cache.ByteLRUCache`.

Hypothesis drives arbitrary operation sequences (put/get/clear with
varying payload sizes) against a small byte budget and checks the
accounting invariants the memory-cost contracts rely on:

* ``used_bytes`` equals the sum of the resident entries' real payload
  bytes at every point in time;
* ``used_bytes`` never exceeds ``budget.total_bytes``;
* ``peak_bytes`` is monotone non-decreasing and dominates
  ``used_bytes``;
* a hit returns exactly the stored payload (pure memoisation);
* hit/miss/eviction counters are consistent with the operations run.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.walks.cache import ByteLRUCache, EdgeStateCache

KEYS = st.integers(min_value=0, max_value=7)

#: one cache operation: ("put", key, payload_elements) | ("get", key)
#: | ("clear",)
OPS = st.one_of(
    st.tuples(st.just("put"), KEYS, st.integers(min_value=0, max_value=40)),
    st.tuples(st.just("get"), KEYS),
    st.tuples(st.just("clear")),
)

BUDGETS = st.integers(min_value=0, max_value=512)


def _apply(cache, ops):
    """Run ``ops`` against ``cache`` and a dict shadow of what fits."""
    shadow = {}
    for op in ops:
        if op[0] == "put":
            _, key, elements = op
            payload = np.full(elements, float(key), dtype=np.float64)
            stored = cache.put(key, payload)
            assert stored == (
                cache.enabled
                and payload.nbytes <= cache.budget.total_bytes
            )
            # A refused put leaves the cache untouched, including any
            # previous entry under the same key.
            if stored:
                shadow[key] = payload
        elif op[0] == "get":
            _, key = op
            value = cache.get(key)
            if value is not None:
                np.testing.assert_array_equal(value, shadow[key])
        else:
            cache.clear()
            shadow.clear()
        # Shadow prune: evictions are the cache's business; resync from
        # the cache's own view, then check the byte invariants below.
        shadow = {k: v for k, v in shadow.items() if k in cache}
        assert cache.used_bytes == sum(
            v.nbytes for v in shadow.values()
        )
        assert cache.used_bytes <= cache.budget.total_bytes
        assert cache.peak_bytes >= cache.used_bytes
        assert len(cache) == len(shadow)
    return shadow


class TestByteAccountingProperties:
    @settings(max_examples=150, deadline=None)
    @given(budget=BUDGETS, ops=st.lists(OPS, max_size=30))
    def test_used_bytes_is_sum_of_resident_entries(self, budget, ops):
        cache = EdgeStateCache(budget)
        _apply(cache, ops)

    @settings(max_examples=150, deadline=None)
    @given(budget=BUDGETS, ops=st.lists(OPS, max_size=30))
    def test_peak_is_monotone_and_dominates_used(self, budget, ops):
        cache = EdgeStateCache(budget)
        last_peak = 0
        for op in ops:
            if op[0] == "put":
                cache.put(
                    op[1], np.zeros(op[2], dtype=np.float64)
                )
            elif op[0] == "get":
                cache.get(op[1])
            else:
                cache.clear()
            assert cache.peak_bytes >= last_peak
            assert cache.peak_bytes >= cache.used_bytes
            last_peak = cache.peak_bytes

    @settings(max_examples=100, deadline=None)
    @given(budget=BUDGETS, ops=st.lists(OPS, max_size=30))
    def test_counters_are_consistent(self, budget, ops):
        cache = EdgeStateCache(budget)
        gets = puts = 0
        for op in ops:
            if op[0] == "put":
                puts += 1
                cache.put(op[1], np.zeros(op[2], dtype=np.float64))
            elif op[0] == "get":
                gets += 1
                cache.get(op[1])
            else:
                cache.clear()
        assert cache.hits + cache.misses == gets
        assert 0 <= cache.evictions <= puts
        stats = cache.stats()
        assert stats["entries"] == len(cache)
        assert stats["used_bytes"] == cache.used_bytes
        assert stats["peak_bytes"] == cache.peak_bytes

    @settings(max_examples=100, deadline=None)
    @given(
        budget=st.integers(min_value=64, max_value=512),
        sizes=st.lists(
            st.integers(min_value=1, max_value=20), min_size=1, max_size=20
        ),
    )
    def test_hot_entry_survives_lru_eviction(self, budget, sizes):
        # Re-touching key 0 after every insert keeps it most-recent, so
        # it is only ever evicted when a new entry needs the whole
        # budget including key 0's bytes.
        cache = EdgeStateCache(budget)
        hot = np.ones(1, dtype=np.float64)
        for offset, elements in enumerate(sizes):
            if cache.peek(0) is None:
                cache.put(0, hot)  # (re)insert: most recent again
            stored = cache.put(1 + offset, np.zeros(elements, dtype=np.float64))
            if stored and elements * 8 + hot.nbytes <= budget:
                assert cache.peek(0) is not None
            if cache.peek(0) is not None:
                cache.get(0)  # refresh recency
            assert cache.used_bytes <= cache.budget.total_bytes

    @settings(max_examples=60, deadline=None)
    @given(ops=st.lists(OPS, max_size=20))
    def test_zero_budget_cache_stores_nothing(self, ops):
        cache = EdgeStateCache(0)
        assert not cache.enabled
        for op in ops:
            if op[0] == "put":
                assert not cache.put(
                    op[1], np.zeros(op[2], dtype=np.float64)
                )
            elif op[0] == "get":
                assert cache.get(op[1]) is None
            else:
                cache.clear()
            assert cache.used_bytes == 0
            assert len(cache) == 0

    @settings(max_examples=60, deadline=None)
    @given(
        budget=st.integers(min_value=1, max_value=512),
        elements=st.integers(min_value=0, max_value=80),
    )
    def test_oversized_entries_are_refused_not_partially_stored(
        self, budget, elements
    ):
        cache = ByteLRUCache(budget)
        payload = np.zeros(elements, dtype=np.float64)
        stored = cache.put("big", payload)
        assert stored == (payload.nbytes <= budget)
        assert cache.used_bytes == (payload.nbytes if stored else 0)
