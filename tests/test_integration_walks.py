"""End-to-end statistical tests: generated walks obey the model.

Runs the full framework (optimizer included) and verifies that the
empirical second-order transition frequencies collected from real walks
match the exact e2e distributions — for every sampler mix the optimizer
produces.
"""

import numpy as np
import pytest

from repro import (
    AutoregressiveModel,
    MemoryAwareFramework,
    Node2VecModel,
    SamplerKind,
    WalkCorpus,
)
from repro.graph import powerlaw_cluster_graph
from repro.sampling.utils import total_variation_distance


@pytest.fixture(scope="module")
def small_graph():
    return powerlaw_cluster_graph(30, 3, 0.5, rng=9)


def transition_tv(graph, model, corpus, min_count=150):
    # Thresholds are sized for multinomial noise at min_count samples over
    # ~15 outcomes (expected TV ~0.09, so 0.15 is a ~3-sigma gate).
    """Max TV distance over well-sampled (u, v) transition contexts."""
    counts = corpus.second_order_transition_counts()
    worst = 0.0
    checked = 0
    for (u, v), counter in counts.items():
        total = sum(counter.values())
        if total < min_count:
            continue
        neighbors = graph.neighbors(v)
        empirical = np.array(
            [counter.get(int(z), 0) for z in neighbors], dtype=np.float64
        )
        exact = model.e2e_distribution(graph, u, v)
        worst = max(
            worst, total_variation_distance(empirical / total, exact)
        )
        checked += 1
    assert checked > 0, "no transition context reached the sample threshold"
    return worst


@pytest.mark.parametrize(
    "budget_ratio,expected_mix",
    [
        (0.05, "mixed"),      # mostly naive/rejection
        (1.0, "alias-heavy"),
    ],
)
def test_node2vec_walks_match_model(small_graph, budget_ratio, expected_mix):
    model = Node2VecModel(0.5, 2.0)
    probe = MemoryAwareFramework(small_graph, model, budget=1e9, rng=0)
    max_budget = probe.cost_table.max_memory()
    fw = MemoryAwareFramework(
        small_graph, model, budget=max_budget * budget_ratio, rng=0
    )
    counts = fw.assignment.counts()
    if expected_mix == "alias-heavy":
        assert counts[SamplerKind.ALIAS] > counts[SamplerKind.NAIVE]
    walks = fw.generate_walks(num_walks=60, length=30, rng=1)
    corpus = WalkCorpus.from_walks(walks)
    assert transition_tv(small_graph, model, corpus) < 0.15


def test_autoregressive_walks_match_model(small_graph):
    model = AutoregressiveModel(0.6)
    probe = MemoryAwareFramework(small_graph, model, budget=1e9, rng=0)
    budget = probe.cost_table.max_memory() * 0.3
    fw = MemoryAwareFramework(small_graph, model, budget=budget, rng=0)
    walks = fw.generate_walks(num_walks=60, length=30, rng=2)
    corpus = WalkCorpus.from_walks(walks)
    assert transition_tv(small_graph, model, corpus) < 0.15


def test_all_three_memory_unaware_agree(small_graph):
    """The three uniform sampler builds produce statistically identical
    transition distributions."""
    model = Node2VecModel(0.25, 4.0)
    tvs = {}
    for kind in SamplerKind:
        fw = MemoryAwareFramework.memory_unaware(small_graph, model, kind, rng=0)
        walks = fw.generate_walks(num_walks=50, length=25, rng=3)
        corpus = WalkCorpus.from_walks(walks)
        tvs[kind] = transition_tv(small_graph, model, corpus)
    for kind, tv in tvs.items():
        assert tv < 0.15, f"{kind.name} deviates: TV={tv:.3f}"


def test_first_step_uses_n2e(small_graph):
    """Step 1 of every walk follows the first-order distribution."""
    model = Node2VecModel(0.25, 4.0)
    fw = MemoryAwareFramework.memory_unaware(
        small_graph, model, SamplerKind.ALIAS, rng=0
    )
    rng = np.random.default_rng(4)
    start = int(np.argmax(small_graph.degrees))
    firsts = np.array(
        [fw.walk(start, 1, rng)[1] for _ in range(6000)]
    )
    neighbors = small_graph.neighbors(start)
    counts = np.array([(firsts == z).sum() for z in neighbors], dtype=np.float64)
    exact = small_graph.neighbor_weights(start) / small_graph.weight_sum(start)
    assert total_variation_distance(counts / counts.sum(), exact) < 0.05


def test_mixed_assignment_has_all_kinds(small_graph):
    """At an intermediate budget the optimizer genuinely mixes samplers and
    the walks still traverse real edges only."""
    model = Node2VecModel(0.25, 4.0)
    probe = MemoryAwareFramework(small_graph, model, budget=1e9, rng=0)
    budget = probe.cost_table.max_memory() * 0.30
    fw = MemoryAwareFramework(small_graph, model, budget=budget, rng=0)
    counts = fw.assignment.counts()
    distinct = sum(1 for c in counts.values() if c > 0)
    assert distinct >= 2
    assert counts[SamplerKind.ALIAS] > 0
    walk = fw.walk(0, 200, np.random.default_rng(5))
    for a, b in zip(walk, walk[1:]):
        assert small_graph.has_edge(int(a), int(b))
