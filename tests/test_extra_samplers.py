"""Tests for first-class user-defined samplers (SamplerSpec)."""

import numpy as np
import pytest

from repro import (
    CostParams,
    MemoryAwareFramework,
    Node2VecModel,
    build_cost_table,
    compute_bounding_constants,
    lp_greedy,
)
from repro.exceptions import CostModelError
from repro.framework import (
    BinaryCdfNodeSampler,
    SamplerSpec,
    binary_cdf_spec,
    extend_cost_table,
)
from repro.sampling.utils import empirical_distribution, total_variation_distance


@pytest.fixture(scope="module")
def setup(medium_graph):
    model = Node2VecModel(0.25, 4.0)
    constants = compute_bounding_constants(medium_graph, model)
    base = build_cost_table(medium_graph, constants, CostParams())
    return medium_graph, model, constants, base


class TestBinaryCdfSampler:
    def test_matches_exact_distribution(self, toy_graph, nv_model, rng):
        sampler = BinaryCdfNodeSampler(toy_graph, nv_model, 0)
        exact = nv_model.e2e_distribution(toy_graph, 1, 0)
        samples = np.array([sampler.sample(1, rng) for _ in range(6000)])
        positions = np.searchsorted(toy_graph.neighbors(0), samples)
        emp = empirical_distribution(positions, toy_graph.degree(0))
        assert total_variation_distance(emp, exact) < 0.05

    def test_sample_first_matches_n2e(self, weighted_graph, nv_model, rng):
        sampler = BinaryCdfNodeSampler(weighted_graph, nv_model, 2)
        samples = np.array([sampler.sample_first(rng) for _ in range(6000)])
        positions = np.searchsorted(weighted_graph.neighbors(2), samples)
        emp = empirical_distribution(positions, weighted_graph.degree(2))
        exact = weighted_graph.neighbor_weights(2) / weighted_graph.weight_sum(2)
        assert total_variation_distance(emp, exact) < 0.05

    def test_costs_between_rejection_and_alias(self, toy_graph, nv_model):
        params = CostParams()
        sampler = BinaryCdfNodeSampler(toy_graph, nv_model, 0)
        d = toy_graph.degree(0)
        alias_mem = (params.float_bytes + params.int_bytes) * (d * d + d)
        assert sampler.memory_cost(params) == pytest.approx(alias_mem / 2)
        assert sampler.time_cost(params) == pytest.approx(np.log2(d))

    def test_unknown_previous_falls_back(self, rng):
        from repro import from_edges

        g = from_edges([(0, 1), (0, 2), (1, 3), (2, 3)])
        sampler = BinaryCdfNodeSampler(g, Node2VecModel(1, 1), 0)
        assert sampler.sample(3, rng) in (1, 2)


class TestSamplerSpec:
    def test_validation(self):
        with pytest.raises(CostModelError):
            SamplerSpec(
                name="",
                memory_fn=lambda p, d: d,
                time_fn=lambda p, d, c: 1.0,
                build=BinaryCdfNodeSampler,
            )
        with pytest.raises(CostModelError):
            SamplerSpec(
                name="x",
                memory_fn=lambda p, d: d,
                time_fn=lambda p, d, c: 1.0,
                build=BinaryCdfNodeSampler,
                min_degree=0,
            )


class TestExtendCostTable:
    def test_adds_columns(self, setup):
        graph, _, _, base = setup
        extended = extend_cost_table(base, graph, [binary_cdf_spec()])
        assert extended.num_samplers == 4
        assert base.num_samplers == 3  # original untouched

    def test_column_values(self, setup):
        graph, _, _, base = setup
        extended = extend_cost_table(base, graph, [binary_cdf_spec()])
        params = base.params
        for v in (0, 5, 17):
            d = graph.degree(v)
            assert extended.memory[v, 3] == pytest.approx(
                params.float_bytes * (d * d + d)
            )
            assert extended.time[v, 3] == pytest.approx(
                max(1.0, np.log2(max(d, 1)))
            )

    def test_availability_respects_min_degree(self, setup, nv_model):
        from repro import from_edges
        from repro.bounding import BoundingConstants

        g = from_edges([(0, 1), (1, 2)], num_nodes=4)
        constants = BoundingConstants(values=np.ones(4))
        base = build_cost_table(g, constants, CostParams())
        extended = extend_cost_table(base, g, [binary_cdf_spec()])
        assert not extended.available[0, 3]  # degree 1
        assert extended.available[1, 3]      # degree 2
        assert not extended.available[3, 3]  # isolated

    def test_empty_specs_identity(self, setup):
        graph, _, _, base = setup
        assert extend_cost_table(base, graph, []) is base

    def test_optimizer_uses_custom_column(self, setup):
        graph, _, _, base = setup
        extended = extend_cost_table(base, graph, [binary_cdf_spec()])
        assignment = lp_greedy(extended, 0.15 * extended.max_memory())
        counts = np.bincount(assignment.samplers, minlength=4)
        # At half alias's price the binary-cdf column must win somewhere.
        assert counts[3] > 0
        assert assignment.used_memory <= 0.15 * extended.max_memory()


class TestFrameworkIntegration:
    def test_end_to_end_with_custom_sampler(self, setup):
        graph, model, constants, base = setup
        fw = MemoryAwareFramework(
            graph, model, budget=0.15 * base.max_memory(),
            bounding_constants=constants,
            extra_samplers=[binary_cdf_spec()],
        )
        counts = np.bincount(fw.assignment.samplers, minlength=4)
        assert counts[3] > 0
        # Nodes on the custom sampler actually got BinaryCdfNodeSampler.
        custom_nodes = np.nonzero(fw.assignment.samplers == 3)[0]
        assert isinstance(fw.sampler(int(custom_nodes[0])), BinaryCdfNodeSampler)
        # And walks traverse real edges.
        walk = fw.walk(int(custom_nodes[0]), 20, rng=1)
        for a, b in zip(walk, walk[1:]):
            assert graph.has_edge(int(a), int(b))

    def test_walks_faithful_with_custom_sampler(self, setup):
        from repro import WalkCorpus
        from repro.analysis import diagnose_walks

        graph, model, constants, base = setup
        fw = MemoryAwareFramework(
            graph, model, budget=0.2 * base.max_memory(),
            bounding_constants=constants,
            extra_samplers=[binary_cdf_spec()],
        )
        corpus = WalkCorpus.from_walks(
            fw.generate_walks(num_walks=40, length=12, rng=2)
        )
        diagnostics = diagnose_walks(graph, model, corpus, min_samples=60)
        assert diagnostics.contexts_checked > 0
        assert diagnostics.is_faithful(max_noise_units=3.5)

    def test_dynamic_budget_with_custom_sampler(self, setup):
        graph, model, constants, base = setup
        fw = MemoryAwareFramework(
            graph, model, budget=0.1 * base.max_memory(),
            bounding_constants=constants,
            extra_samplers=[binary_cdf_spec()],
        )
        update, _ = fw.set_budget(0.4 * base.max_memory())
        assert update.steps_applied > 0
        update, _ = fw.set_budget(0.1 * base.max_memory())
        assert update.steps_reverted > 0
        walk = fw.walk(0, 10, rng=3)
        assert len(walk) == 11

    def test_cheaper_than_builtin_trio_at_equal_budget(self, setup):
        """The custom sampler expands the frontier: total modeled time at a
        fixed budget can only improve (the optimizer may ignore it)."""
        graph, model, constants, base = setup
        budget = 0.15 * base.max_memory()
        trio = lp_greedy(base, budget).total_time
        extended = extend_cost_table(base, graph, [binary_cdf_spec()])
        quartet = lp_greedy(extended, budget).total_time
        assert quartet <= trio + 1e-9
