"""Tests for the RNG helpers and the exception hierarchy."""

import numpy as np
import pytest

from repro import exceptions
from repro.rng import ensure_rng, spawn_rng


class TestEnsureRng:
    def test_none_is_deterministic_default(self):
        a = ensure_rng(None).random(5)
        b = ensure_rng(None).random(5)
        assert np.allclose(a, b)

    def test_int_seed(self):
        a = ensure_rng(7).random(5)
        b = ensure_rng(7).random(5)
        c = ensure_rng(8).random(5)
        assert np.allclose(a, b)
        assert not np.allclose(a, c)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(3)
        assert ensure_rng(gen) is gen

    def test_numpy_integer_accepted(self):
        assert isinstance(ensure_rng(np.int64(5)), np.random.Generator)

    def test_invalid_type(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")


class TestSpawnRng:
    def test_children_deterministic(self):
        a = spawn_rng(1, 0).random(4)
        b = spawn_rng(1, 0).random(4)
        assert np.allclose(a, b)

    def test_children_independent(self):
        a = spawn_rng(1, 0).random(4)
        b = spawn_rng(1, 1).random(4)
        assert not np.allclose(a, b)


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in dir(exceptions):
            obj = getattr(exceptions, name)
            if (
                isinstance(obj, type)
                and issubclass(obj, Exception)
                and obj is not exceptions.ReproError
            ):
                assert issubclass(obj, exceptions.ReproError), name

    def test_oom_error_fields(self):
        err = exceptions.SimulatedOOMError(1000, 500, what="alias")
        assert err.required_bytes == 1000
        assert err.available_bytes == 500
        assert "alias" in str(err)
        assert "1000" in str(err)

    def test_timeout_error_fields(self):
        err = exceptions.SimulatedTimeoutError(100.0, 10.0, what="naive walk")
        assert err.modeled_cost == 100.0
        assert err.limit == 10.0
        assert "naive walk" in str(err)

    def test_infeasible_is_budget_error(self):
        assert issubclass(
            exceptions.InfeasibleBudgetError, exceptions.BudgetError
        )

    def test_empty_graph_is_format_error(self):
        assert issubclass(exceptions.EmptyGraphError, exceptions.GraphFormatError)

    def test_catch_all_pattern(self, toy_graph, nv_model):
        """Library failures are catchable with one except clause."""
        from repro import MemoryAwareFramework

        with pytest.raises(exceptions.ReproError):
            MemoryAwareFramework(toy_graph, nv_model, budget=-5)
