"""Property-based tests for the graph substrate and model invariants."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import AutoregressiveModel, Node2VecModel, from_edges
from repro.bounding import (
    compute_bounding_constants,
    edge_bounding_constant,
    theorem1_bound,
)
from repro.graph.stats import common_neighbor_count


def build_unweighted(edges):
    """Deduplicate the raw pairs so merging never produces weights > 1."""
    unique = {(min(u, v), max(u, v)) for u, v in edges if u != v}
    if not unique:
        unique = {(0, 1)}
    return from_edges(sorted(unique))

SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

edge_list = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=14),
        st.integers(min_value=0, max_value=14),
    ),
    min_size=1,
    max_size=40,
)


class TestCSRInvariants:
    @given(edges=edge_list)
    @SETTINGS
    def test_builder_invariants(self, edges):
        g = from_edges(edges)
        # indptr consistency.
        assert g.indptr[0] == 0
        assert g.indptr[-1] == len(g.indices)
        assert np.all(np.diff(g.indptr) >= 0)
        # Sorted rows, no self loops, symmetric storage.
        for v in range(g.num_nodes):
            row = g.neighbors(v)
            assert np.all(np.diff(row) > 0)  # sorted AND deduplicated
            assert v not in row
        assert g.is_symmetric()

    @given(edges=edge_list)
    @SETTINGS
    def test_degree_sum_equals_stored_edges(self, edges):
        g = from_edges(edges)
        assert int(g.degrees.sum()) == g.num_edges

    @given(edges=edge_list)
    @SETTINGS
    def test_common_neighbors_symmetric(self, edges):
        g = from_edges(edges)
        if g.num_nodes >= 2:
            assert common_neighbor_count(g, 0, 1) == common_neighbor_count(g, 1, 0)


class TestModelInvariants:
    @given(
        edges=edge_list,
        a=st.sampled_from([0.25, 0.5, 1.0, 2.0, 4.0]),
        b=st.sampled_from([0.25, 0.5, 1.0, 2.0, 4.0]),
    )
    @SETTINGS
    def test_node2vec_e2e_is_distribution(self, edges, a, b):
        g = from_edges(edges)
        model = Node2VecModel(a, b)
        for u, v, _ in list(g.edges())[:10]:
            p = model.e2e_distribution(g, u, v)
            assert p.sum() == 1.0 or abs(p.sum() - 1.0) < 1e-9
            assert np.all(p >= 0)

    @given(edges=edge_list, alpha=st.sampled_from([0.0, 0.2, 0.5, 0.8]))
    @SETTINGS
    def test_autoregressive_e2e_is_distribution(self, edges, alpha):
        g = from_edges(edges)
        model = AutoregressiveModel(alpha)
        for u, v, _ in list(g.edges())[:10]:
            p = model.e2e_distribution(g, u, v)
            assert abs(p.sum() - 1.0) < 1e-9
            assert np.all(p >= 0)


class TestTheorem1Property:
    @given(
        edges=edge_list,
        a=st.sampled_from([0.25, 1.0, 4.0]),
        b=st.sampled_from([0.25, 1.0, 4.0]),
    )
    @SETTINGS
    def test_node2vec_bound(self, edges, a, b):
        g = build_unweighted(edges)
        model = Node2VecModel(a, b)
        for u, v, _ in list(g.edges())[:10]:
            actual = edge_bounding_constant(g, model, u, v)
            bound = theorem1_bound(g, model, u, v)
            assert actual <= bound + 1e-9

    @given(edges=edge_list, alpha=st.sampled_from([0.0, 0.3, 0.8]))
    @SETTINGS
    def test_autoregressive_bound(self, edges, alpha):
        g = build_unweighted(edges)
        model = AutoregressiveModel(alpha)
        for u, v, _ in list(g.edges())[:10]:
            actual = edge_bounding_constant(g, model, u, v)
            bound = theorem1_bound(g, model, u, v)
            assert actual <= bound + 1e-9

    @given(edges=edge_list)
    @SETTINGS
    def test_constants_bounded_by_degree(self, edges):
        """Section 4.2's 1 <= C_v <= d_v claim (for standard parameters)."""
        g = build_unweighted(edges)
        model = Node2VecModel(0.25, 4.0)
        constants = compute_bounding_constants(g, model)
        for v in range(g.num_nodes):
            d = g.degree(v)
            assert constants[v] >= 1.0 - 1e-12
            if d > 0:
                assert constants[v] <= d + 1e-9
