"""Unit tests for graph IO round-trips."""

import pytest

from repro.exceptions import GraphFormatError
from repro.graph import (
    load_csr_npz,
    load_edge_list,
    save_csr_npz,
    save_edge_list,
)


class TestEdgeList:
    def test_round_trip_unweighted(self, toy_graph, tmp_path):
        path = tmp_path / "g.txt"
        save_edge_list(toy_graph, path)
        loaded = load_edge_list(path, undirected=False)
        assert loaded == toy_graph

    def test_round_trip_weighted(self, weighted_graph, tmp_path):
        path = tmp_path / "g.txt"
        save_edge_list(weighted_graph, path)
        loaded = load_edge_list(path, undirected=False)
        assert loaded == weighted_graph

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# header\n\n% other comment\n0 1\n1 2\n")
        g = load_edge_list(path)
        assert g.num_nodes == 3
        assert g.has_edge(0, 1)

    def test_weighted_parsing(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 2.5\n")
        g = load_edge_list(path)
        assert g.edge_weight(0, 1) == 2.5

    def test_bad_field_count(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 2 3\n")
        with pytest.raises(GraphFormatError, match="expected 2 or 3 fields"):
            load_edge_list(path)

    def test_bad_node_id(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("a b\n")
        with pytest.raises(GraphFormatError, match="bad node id"):
            load_edge_list(path)

    def test_bad_weight(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 xyz\n")
        with pytest.raises(GraphFormatError, match="bad weight"):
            load_edge_list(path)

    def test_num_nodes_override(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n")
        g = load_edge_list(path, num_nodes=5)
        assert g.num_nodes == 5


class TestNpz:
    def test_round_trip(self, weighted_graph, tmp_path):
        path = tmp_path / "g.npz"
        save_csr_npz(weighted_graph, path)
        assert load_csr_npz(path) == weighted_graph

    def test_missing_arrays(self, tmp_path):
        import numpy as np

        path = tmp_path / "bad.npz"
        np.savez_compressed(path, indptr=np.array([0]))
        with pytest.raises(GraphFormatError, match="missing arrays"):
            load_csr_npz(path)
