"""Unit tests for walk corpora and benchmark tasks."""

import numpy as np
import pytest

from repro import (
    MemoryAwareFramework,
    Node2VecModel,
    WalkCorpus,
    node2vec_walk_task,
    second_order_pagerank,
)
from repro.exceptions import WalkError


@pytest.fixture
def framework(toy_graph, nv_model):
    return MemoryAwareFramework(toy_graph, nv_model, budget=1e4)


class TestWalkCorpus:
    def test_from_walks(self):
        corpus = WalkCorpus.from_walks([[0, 1, 2], [2, 1]])
        assert len(corpus) == 2
        assert corpus.total_steps == 3
        assert corpus.average_length == pytest.approx(1.5)

    def test_add_and_iterate(self):
        corpus = WalkCorpus()
        corpus.add(np.array([0, 1]))
        assert len(list(corpus)) == 1
        assert list(corpus[0]) == [0, 1]

    def test_visit_counts(self):
        corpus = WalkCorpus.from_walks([[0, 1, 0], [1, 2]])
        counts = corpus.visit_counts(3)
        assert list(counts) == [2, 2, 1]

    def test_second_order_transition_counts(self):
        corpus = WalkCorpus.from_walks([[0, 1, 2, 1], [0, 1, 2, 3]])
        counts = corpus.second_order_transition_counts()
        assert counts[(0, 1)][2] == 2
        assert counts[(1, 2)][1] == 1
        assert counts[(1, 2)][3] == 1

    def test_context_pairs_window(self):
        corpus = WalkCorpus.from_walks([[0, 1, 2]])
        pairs = list(corpus.context_pairs(window=1))
        assert (0, 1) in pairs and (1, 0) in pairs and (1, 2) in pairs
        assert (0, 2) not in pairs
        wide = list(corpus.context_pairs(window=2))
        assert (0, 2) in wide

    def test_context_pairs_invalid_window(self):
        corpus = WalkCorpus.from_walks([[0, 1]])
        with pytest.raises(WalkError):
            list(corpus.context_pairs(window=0))

    def test_save_load_round_trip(self, tmp_path):
        corpus = WalkCorpus.from_walks([[0, 1, 2], [3, 4]])
        path = tmp_path / "walks.txt"
        corpus.save(path)
        loaded = WalkCorpus.load(path)
        assert len(loaded) == 2
        assert list(loaded[1]) == [3, 4]

    def test_empty_corpus_stats(self):
        corpus = WalkCorpus()
        assert corpus.average_length == 0.0
        assert corpus.total_steps == 0


class TestNode2VecTask:
    def test_walks_generated(self, framework, rng):
        result = node2vec_walk_task(
            framework.walk_engine, num_walks=3, length=8, rng=rng
        )
        assert result.num_walks == 3 * 4
        assert result.sampling_seconds > 0
        assert all(len(w) == 9 for w in result.corpus)

    def test_default_parameters_match_paper(self, framework, rng):
        result = node2vec_walk_task(framework.walk_engine, rng=rng)
        assert result.num_walks == 10 * 4  # 10 walks per node
        assert len(result.corpus[0]) == 81  # length 80


class TestSecondOrderPageRank:
    def test_scores_normalised(self, framework, rng):
        result = second_order_pagerank(
            framework.walk_engine, 0, num_samples=200, rng=rng
        )
        assert result.scores.sum() == pytest.approx(1.0)
        assert result.num_samples == 200

    def test_query_node_has_high_score(self, framework, rng):
        result = second_order_pagerank(
            framework.walk_engine, 0, num_samples=500, rng=rng
        )
        # The query node is visited at every restart → top score.
        assert result.top(1)[0][0] == 0

    def test_default_sample_size_is_4v(self, framework, rng):
        result = second_order_pagerank(framework.walk_engine, 1, rng=rng)
        assert result.num_samples == 4 * 4

    def test_invalid_query(self, framework, rng):
        with pytest.raises(WalkError):
            second_order_pagerank(framework.walk_engine, 99, rng=rng)

    def test_invalid_sample_count(self, framework, rng):
        with pytest.raises(WalkError):
            second_order_pagerank(framework.walk_engine, 0, num_samples=0, rng=rng)

    def test_top_k(self, framework, rng):
        result = second_order_pagerank(
            framework.walk_engine, 0, num_samples=200, rng=rng
        )
        top = result.top(2)
        assert len(top) == 2
        assert top[0][1] >= top[1][1]

    def test_scores_concentrate_near_query(self, medium_graph, rng):
        fw = MemoryAwareFramework(
            medium_graph, Node2VecModel(1.0, 1.0), budget=1e6
        )
        result = second_order_pagerank(
            fw.walk_engine, 5, num_samples=400, max_length=10, rng=rng
        )
        # Personalised PageRank mass should decay with distance: the query
        # itself dominates.
        assert result.scores[5] == result.scores.max()
