"""Tests for the analysis utilities (assignment profile, walk diagnostics)."""

import pytest

from repro import (
    CostParams,
    MemoryAwareFramework,
    Node2VecModel,
    SamplerKind,
    WalkCorpus,
    build_cost_table,
    compute_bounding_constants,
    lp_greedy,
)
from repro.analysis import diagnose_walks, profile_assignment, transition_deviation
from repro.exceptions import AssignmentError, WalkError


@pytest.fixture(scope="module")
def setup(medium_graph):
    model = Node2VecModel(0.25, 4.0)
    constants = compute_bounding_constants(medium_graph, model)
    table = build_cost_table(medium_graph, constants, CostParams())
    assignment = lp_greedy(table, 0.2 * table.max_memory())
    return medium_graph, model, constants, table, assignment


class TestAssignmentProfile:
    def test_totals_match_assignment(self, setup):
        graph, _, _, table, assignment = setup
        profile = profile_assignment(graph, assignment, table)
        assert profile.total_memory == pytest.approx(assignment.used_memory)
        assert profile.total_time == pytest.approx(assignment.total_time)
        assert sum(b.node_count for b in profile.buckets) == graph.num_nodes

    def test_buckets_ordered_and_disjoint(self, setup):
        graph, _, _, table, assignment = setup
        profile = profile_assignment(graph, assignment, table)
        for first, second in zip(profile.buckets, profile.buckets[1:]):
            assert first.high <= second.low

    def test_high_degree_nodes_eat_memory(self, setup):
        """The paper's story: big nodes' samplers dominate the footprint."""
        graph, _, _, table, assignment = setup
        profile = profile_assignment(graph, assignment, table)
        top = profile.buckets[-1]
        per_node_top = top.memory_bytes / top.node_count
        bottom = profile.buckets[0]
        per_node_bottom = bottom.memory_bytes / bottom.node_count
        assert per_node_top > per_node_bottom

    def test_render(self, setup):
        graph, _, _, table, assignment = setup
        text = profile_assignment(graph, assignment, table).render()
        assert "degree" in text and "mem %" in text

    def test_dominant_sampler(self, setup):
        graph, _, _, table, assignment = setup
        profile = profile_assignment(graph, assignment, table)
        for bucket in profile.buckets:
            assert bucket.dominant_sampler() in ("N", "R", "A")

    def test_length_mismatch(self, setup, toy_graph):
        _, _, _, table, assignment = setup
        with pytest.raises(AssignmentError):
            profile_assignment(toy_graph, assignment, table)

    def test_invalid_buckets(self, setup):
        graph, _, _, table, assignment = setup
        with pytest.raises(AssignmentError):
            profile_assignment(graph, assignment, table, num_buckets=0)


class TestWalkDiagnostics:
    @pytest.fixture(scope="class")
    def corpus_setup(self):
        from repro.graph import powerlaw_cluster_graph

        graph = powerlaw_cluster_graph(25, 3, 0.5, rng=5)
        model = Node2VecModel(0.5, 2.0)
        fw = MemoryAwareFramework.memory_unaware(
            graph, model, SamplerKind.ALIAS, rng=0
        )
        walks = fw.generate_walks(num_walks=60, length=20, rng=1)
        return graph, model, WalkCorpus.from_walks(walks)

    def test_faithful_corpus(self, corpus_setup):
        graph, model, corpus = corpus_setup
        diagnostics = diagnose_walks(graph, model, corpus, min_samples=200)
        assert diagnostics.contexts_checked > 0
        assert diagnostics.is_faithful(max_noise_units=3.5)
        assert diagnostics.node_coverage == 1.0
        assert diagnostics.total_steps == corpus.total_steps

    def test_wrong_model_detected(self, corpus_setup):
        """Diagnosing a corpus against the WRONG model must flag it."""
        graph, _, corpus = corpus_setup
        wrong = Node2VecModel(8.0, 0.05)  # strongly different bias
        diagnostics = diagnose_walks(graph, wrong, corpus, min_samples=200)
        assert not diagnostics.is_faithful()
        assert diagnostics.max_noise_ratio > 5

    def test_transition_deviation_rows(self, corpus_setup):
        graph, model, corpus = corpus_setup
        rows = transition_deviation(graph, model, corpus, min_samples=200)
        for row in rows:
            assert graph.has_edge(row.previous, row.current)
            assert 0 <= row.tv <= 1
            assert row.samples >= 200
            assert row.expected_tv > 0
            assert row.noise_ratio == row.tv / row.expected_tv

    def test_invalid_min_samples(self, corpus_setup):
        graph, model, corpus = corpus_setup
        with pytest.raises(WalkError):
            transition_deviation(graph, model, corpus, min_samples=0)

    def test_empty_corpus(self, corpus_setup):
        graph, model, _ = corpus_setup
        diagnostics = diagnose_walks(graph, model, WalkCorpus())
        assert diagnostics.contexts_checked == 0
        assert diagnostics.node_coverage == 0.0
        assert not diagnostics.is_faithful()
