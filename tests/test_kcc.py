"""Tests for the kernel contract checker (``repro.analysis.kcc``).

Three layers, mirroring the pass split:

* **contract extraction** — the real ``src/repro`` tree yields the seven
  shipped kernels with the right roles, dims, sentinels and uniform
  arities, serialised into the committed ``kernel-contracts.json``;
* **rules** — each planted fixture class fires (backend parity drift,
  silent dtype widening/narrowing, float fancy indexing, shape-dim
  mixing, degree-scaled allocation, in-kernel raise, uniform over/under-
  draw, unscoped uniforms) and each good twin stays silent;
* **conformance** — the static per-kernel uniform-draw bounds agree with
  the DSan runtime per-kernel draw attribution on a real sanitized walk.
"""

import json
from pathlib import Path

import pytest

from repro import Node2VecModel
from repro.analysis.dsan import DsanReport
from repro.analysis.kcc import (
    KCC_RULE_REGISTRY,
    collect_contracts,
    collect_program,
    render_contracts_json,
    static_draw_table,
)
from repro.analysis.lint import Baseline, lint_main, run_lint
from repro.graph import barabasi_albert_graph
from repro.walks import BatchWalkEngine, parallel_walks

FIXTURES = Path(__file__).resolve().parent / "analysis_fixtures"
REPO_ROOT = Path(__file__).resolve().parents[1]

SHIPPED_KERNELS = {
    "regroup_pairs",
    "gather_segments",
    "segmented_inverse_cdf",
    "flat_alias_pick",
    "gathered_alias_pick",
    "acceptance_mask",
    "advance_frontier",
}


def kcc_findings(files, rules=None):
    """Lint fixture ``files`` with the kcc pass and no baseline."""
    result, _ = run_lint(
        [FIXTURES / name for name in files],
        rules=rules,
        baseline=Baseline(),
        root=FIXTURES,
        kcc=True,
    )
    return result.new_findings


# ----------------------------------------------------------------------
# contract extraction over the real tree
# ----------------------------------------------------------------------
class TestContractExtraction:
    @pytest.fixture(scope="class")
    def program(self):
        return collect_program()

    def test_all_shipped_kernels_extracted(self, program):
        assert set(program.contracts) == SHIPPED_KERNELS
        assert program.reference is not None
        assert set(program.backends) == {"numba"}

    def test_uniform_arities(self, program):
        arities = {
            name: len(contract.uniform_params)
            for name, contract in program.contracts.items()
        }
        assert arities == {
            "regroup_pairs": 0,
            "gather_segments": 0,
            "segmented_inverse_cdf": 1,
            "flat_alias_pick": 2,
            "gathered_alias_pick": 2,
            "acceptance_mask": 1,
            "advance_frontier": 0,
        }

    def test_xp_first_and_dtypes_known(self, program):
        for contract in program.contracts.values():
            assert contract.params[0].role == "xp"
            for param in contract.params[1:]:
                assert param.dtype in ("bool", "int64", "float64"), (
                    contract.name,
                    param.name,
                )
                assert param.dim, (contract.name, param.name)

    def test_sentinel_and_mutation_metadata(self, program):
        assert program.contracts["segmented_inverse_cdf"].sentinel
        assert set(program.contracts["advance_frontier"].mutates) == {
            "previous",
            "current",
            "active",
        }
        assert program.contracts["advance_frontier"].returns == "None"

    def test_static_draw_table(self):
        table = static_draw_table()
        assert table["segmented_inverse_cdf"] == 1
        assert table["flat_alias_pick"] == 2
        assert table["gathered_alias_pick"] == 2
        assert table["acceptance_mask"] == 1
        assert table["walker_streams"] == 1
        assert table["regroup_pairs"] == 0

    def test_every_scope_names_a_known_kernel_or_pseudo_scope(self, program):
        table = static_draw_table()
        for site in program.scopes:
            assert site.scope in table


# ----------------------------------------------------------------------
# the committed contract JSON
# ----------------------------------------------------------------------
class TestContractsJson:
    def test_committed_contracts_json_is_fresh(self):
        committed = (REPO_ROOT / "kernel-contracts.json").read_text(
            encoding="utf-8"
        )
        regenerated = render_contracts_json(collect_contracts())
        assert committed == regenerated, (
            "kernel-contracts.json is stale; regenerate with "
            "`repro lint --kcc --contracts-json kernel-contracts.json`"
        )

    def test_payload_shape(self):
        payload = json.loads(
            (REPO_ROOT / "kernel-contracts.json").read_text(encoding="utf-8")
        )
        assert payload["version"] == 1
        assert {k["name"] for k in payload["kernels"]} == SHIPPED_KERNELS
        assert payload["draws_per_call"]["flat_alias_pick"] == 2
        scoped = {s["scope"] for s in payload["scopes"]}
        assert "segmented_inverse_cdf" in scoped

    def test_cli_writes_contracts_json(self, tmp_path, capsys):
        target = tmp_path / "contracts.json"
        argv = [
            str(REPO_ROOT / "src" / "repro"),
            "--no-baseline",
            "--rules",
            "KCC101",
            "--contracts-json",
            str(target),
        ]
        assert lint_main(argv) == 0
        payload = json.loads(target.read_text(encoding="utf-8"))
        assert {k["name"] for k in payload["kernels"]} == SHIPPED_KERNELS
        assert "kernel contracts written" in capsys.readouterr().out


# ----------------------------------------------------------------------
# per-rule detection on planted fixtures
# ----------------------------------------------------------------------
class TestKernelParityRule:
    def test_bad_backend_fires_every_drift_class(self):
        findings = kcc_findings(
            ["kcc_parity_ref.py", "kcc_parity_bad.py"], rules=["KCC101"]
        )
        assert len(findings) == 5
        assert all(f.rule == "KCC101" for f in findings)
        assert all(f.path.endswith("kcc_parity_bad.py") for f in findings)
        messages = "\n".join(f.message for f in findings)
        assert "missing kernel 'pick_columns'" in messages
        assert "KERNEL_NAMES drift" in messages
        assert "parameter drift" in messages
        assert "annotation drift" in messages
        assert "return annotation drift" in messages

    def test_conformant_backend_is_clean(self):
        assert kcc_findings(["kcc_parity_ref.py", "kcc_parity_good.py"]) == []

    def test_real_backends_hold_parity(self):
        result, _ = run_lint(
            [REPO_ROOT / "src" / "repro" / "walks" / "kernels"],
            rules=["KCC101"],
            baseline=Baseline(),
            kcc=True,
        )
        assert result.new_findings == []


class TestKernelDtypeRule:
    def test_bad_kernels_fire_every_category(self):
        findings = kcc_findings(["kcc_dtype_bad.py"], rules=["KCC102"])
        assert len(findings) == 4
        categories = {f.message.split("]")[0].lstrip("[") for f in findings}
        assert categories == {"implicit-cast", "float-index", "shape-mismatch"}

    def test_explicit_casts_are_clean(self):
        assert kcc_findings(["kcc_dtype_good.py"]) == []


class TestKernelAllocAndRaiseRules:
    def test_degree_allocation_and_raise_fire(self):
        findings = kcc_findings(
            ["kcc_alloc_bad.py"], rules=["KCC103", "KCC104"]
        )
        rules = sorted(f.rule for f in findings)
        assert rules == ["KCC103", "KCC104"]
        alloc = next(f for f in findings if f.rule == "KCC103")
        assert "degrees" in alloc.message

    def test_inline_suppression_works_for_kcc(self, tmp_path):
        source = (FIXTURES / "kcc_alloc_bad.py").read_text(encoding="utf-8")
        source = source.replace(
            "raise ValueError(\"empty segment\")  # finding: KCC104",
            "raise ValueError(\"empty segment\")  # reprolint: disable=KCC104",
        )
        fixture = tmp_path / "kcc_alloc_suppressed.py"
        fixture.write_text(source, encoding="utf-8")
        result, _ = run_lint(
            [fixture],
            rules=["KCC104"],
            baseline=Baseline(),
            root=tmp_path,
            kcc=True,
        )
        assert result.new_findings == []


class TestUniformAccountingRule:
    def test_bad_driver_fires_every_accounting_class(self):
        findings = kcc_findings(
            ["kcc_parity_ref.py", "kcc_uniform_bad.py"], rules=["KCC105"]
        )
        assert len(findings) == 4
        assert all(f.path.endswith("kcc_uniform_bad.py") for f in findings)
        messages = "\n".join(f.message for f in findings)
        assert "over-draws" in messages
        assert "under-draws" in messages
        assert "drawn outside any kernel_scope" in messages
        assert "no chunk-generator draws" in messages

    def test_scoped_driver_is_clean(self):
        assert kcc_findings(["kcc_parity_ref.py", "kcc_uniform_good.py"]) == []


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
class TestKccCli:
    def test_kcc_rules_listed(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in KCC_RULE_REGISTRY:
            assert rule_id in out

    def test_check_fails_on_planted_fixture(self):
        argv = [
            str(FIXTURES / "kcc_alloc_bad.py"),
            "--no-baseline",
            "--check",
            "--rules",
            "KCC103,KCC104",
        ]
        assert lint_main(argv) == 1

    def test_naming_a_kcc_rule_implies_the_pass(self):
        # No --kcc flag: selecting KCC ids alone must still run the pass.
        findings = kcc_findings(["kcc_alloc_bad.py"], rules=["KCC103"])
        assert len(findings) == 1

    def test_kcc_clean_on_shipped_tree(self):
        argv = [
            str(REPO_ROOT / "src" / "repro"),
            "--no-baseline",
            "--check",
            "--rules",
            ",".join(sorted(KCC_RULE_REGISTRY)),
        ]
        assert lint_main(argv) == 0

    def test_github_output_format(self, capsys):
        argv = [
            str(FIXTURES / "kcc_alloc_bad.py"),
            "--no-baseline",
            "--check",
            "--rules",
            "KCC103",
            "--output-format",
            "github",
        ]
        assert lint_main(argv) == 1
        out = capsys.readouterr().out
        assert "::error file=" in out
        assert "title=KCC103" in out
        assert ",line=" in out and ",col=" in out

    def test_github_output_format_clean_run(self, capsys):
        argv = [
            str(FIXTURES / "kcc_parity_ref.py"),
            "--no-baseline",
            "--check",
            "--output-format",
            "github",
        ]
        assert lint_main(argv) == 0
        out = capsys.readouterr().out
        assert "::error" not in out
        assert "0 new finding(s)" in out


# ----------------------------------------------------------------------
# static bounds vs DSan runtime attribution
# ----------------------------------------------------------------------
class TestDsanConformance:
    def test_static_draw_bounds_match_runtime_attribution(self):
        graph = barabasi_albert_graph(40, 3, rng=5)
        engine = BatchWalkEngine(graph, Node2VecModel(0.5, 2.0))
        corpus = parallel_walks(
            engine,
            num_walks=2,
            length=10,
            workers=1,
            chunk_size=8,
            rng=7,
            dsan=True,
        )
        report = DsanReport.from_dict(corpus.metadata["dsan"])
        static = static_draw_table()

        runtime: dict[str, int] = {}
        for fingerprint in report.fingerprints.values():
            for name, count in fingerprint.kernels:
                runtime[name] = runtime.get(name, 0) + count
        attributed = {
            name: count for name, count in runtime.items() if name != "<chunk>"
        }
        assert attributed, "no kernel-attributed draws recorded"

        # Every runtime attribution scope must be statically known, and
        # its draw count an exact multiple of the static per-call bound.
        for name, count in attributed.items():
            assert name in static, f"runtime scope {name!r} not in static table"
            per_call = static[name]
            assert per_call > 0, (
                f"runtime draws under {name!r} but static bound is zero"
            )
            assert count % per_call == 0, (
                f"{name}: {count} runtime draws not a multiple of the "
                f"static {per_call}/call bound"
            )
