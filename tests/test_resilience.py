"""Fault-injection suite for the resilience subsystem.

Covers the recovery paths end to end: crash-retry-success identity,
retry-exhaustion dead-lettering, timeout containment of hung workers,
corrupt-result detection, checkpoint/resume determinism, and graceful OOM
degradation with byte-exact event accounting.
"""

import warnings

import numpy as np
import pytest

from repro import (
    ChunkFailure,
    DegradedRunWarning,
    FaultKind,
    FaultPlan,
    MemoryAwareFramework,
    Node2VecModel,
    RetryPolicy,
    SimulatedOOMError,
    WalkCheckpoint,
)
from repro.cost import SamplerKind
from repro.exceptions import CheckpointError, InjectedFaultError, WalkError
from repro.graph import barabasi_albert_graph
from repro.resilience import ChunkSupervisor, DeadLetter
from repro.resilience.degradation import chain_downgrade
from repro.walks import parallel_walks


@pytest.fixture(scope="module")
def graph():
    return barabasi_albert_graph(60, 3, rng=7)


@pytest.fixture(scope="module")
def framework(graph):
    return MemoryAwareFramework(
        graph, Node2VecModel(0.5, 2.0), budget=1e6, rng=0
    )


@pytest.fixture(scope="module")
def reference(framework):
    """Fault-free corpus every recovery test must reproduce exactly."""
    return parallel_walks(
        framework.walk_engine,
        num_walks=2,
        length=6,
        workers=1,
        chunk_size=8,
        rng=11,
    )


def assert_same_corpus(a, b):
    assert len(a) == len(b)
    for x, y in zip(a, b):
        assert np.array_equal(x, y)


# ----------------------------------------------------------------------
# FaultPlan
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_deterministic_schedule(self):
        a = FaultPlan(seed=5, rate=0.3)
        b = FaultPlan(seed=5, rate=0.3)
        assert a.injected_chunks(50) == b.injected_chunks(50)
        assert FaultPlan(seed=6, rate=0.3).injected_chunks(50) != a.injected_chunks(50)

    def test_schedule_independent_of_chunk_count(self):
        plan = FaultPlan(seed=5, rate=0.3)
        long = plan.injected_chunks(100)
        short = plan.injected_chunks(10)
        assert short == [i for i in long if i < 10]

    def test_failures_per_chunk_bounds_attempts(self):
        plan = FaultPlan(chunks={4}, failures_per_chunk=2)
        assert plan.fault_for(4, 0) is FaultKind.CRASH
        assert plan.fault_for(4, 1) is FaultKind.CRASH
        assert plan.fault_for(4, 2) is None
        assert plan.fault_for(3, 0) is None

    def test_persistent_plan_never_recovers(self):
        plan = FaultPlan(chunks={1}, failures_per_chunk=None)
        assert plan.persistent
        assert plan.fault_for(1, 99) is FaultKind.CRASH

    def test_crash_hook_raises(self):
        plan = FaultPlan(chunks={0})
        with pytest.raises(InjectedFaultError):
            plan.before_chunk(0, 0)
        plan.before_chunk(2, 0)  # non-faulty chunk: no-op

    def test_validation(self):
        with pytest.raises(WalkError):
            FaultPlan(rate=1.5)
        with pytest.raises(WalkError):
            FaultPlan(failures_per_chunk=0)


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_delay=0.1, backoff=2.0, max_delay=0.5, jitter=0.0)
        assert policy.delay(0, 0) == pytest.approx(0.1)
        assert policy.delay(0, 1) == pytest.approx(0.2)
        assert policy.delay(0, 5) == pytest.approx(0.5)  # capped

    def test_jitter_is_deterministic(self):
        policy = RetryPolicy(jitter=0.5, seed=3)
        assert policy.delay(7, 1) == policy.delay(7, 1)
        assert policy.delay(7, 1) != policy.delay(8, 1)

    def test_none_disables_retries(self):
        assert RetryPolicy.none().max_attempts == 1

    def test_validation(self):
        with pytest.raises(WalkError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(WalkError):
            RetryPolicy(backoff=0.5)


# ----------------------------------------------------------------------
# crash -> retry -> success
# ----------------------------------------------------------------------
class TestCrashRecovery:
    @pytest.mark.parametrize("workers", [1, 3])
    def test_retry_masks_transient_crashes(self, framework, reference, workers):
        """A seeded plan failing ~10%% of chunks once leaves no trace."""
        plan = FaultPlan(seed=5, rate=0.3, failures_per_chunk=1)
        assert plan.injected_chunks(8)  # the plan actually injects faults
        corpus = parallel_walks(
            framework.walk_engine,
            num_walks=2,
            length=6,
            workers=workers,
            chunk_size=8,
            rng=11,
            fault_plan=plan,
            retry=RetryPolicy(max_attempts=3, base_delay=0.001),
        )
        assert corpus.is_complete
        assert_same_corpus(corpus, reference)

    def test_exhaustion_raises_chunk_failure_with_context(self, framework):
        plan = FaultPlan(chunks={2}, failures_per_chunk=None)
        with pytest.raises(ChunkFailure) as excinfo:
            parallel_walks(
                framework.walk_engine,
                num_walks=1,
                length=4,
                workers=1,
                chunk_size=8,
                rng=0,
                fault_plan=plan,
                retry=RetryPolicy(max_attempts=2, base_delay=0.001),
            )
        failure = excinfo.value
        assert failure.chunk_index == 2
        assert failure.attempts == 2
        assert failure.start_nodes[0] == 16  # chunk 2 of chunk_size 8
        assert isinstance(failure.cause, InjectedFaultError)
        assert "chunk 2" in str(failure)
        assert "16..23" in str(failure)

    def test_sequential_fallback_wraps_genuine_errors(self, framework):
        """Worker exceptions carry chunk context even without a pool or a
        fault plan: a genuinely bad start node surfaces as ChunkFailure."""
        with pytest.raises(ChunkFailure) as excinfo:
            parallel_walks(
                framework.walk_engine,
                num_walks=1,
                length=4,
                workers=1,
                chunk_size=4,
                nodes=[0, 1, 2, 3, 10 ** 6],  # out-of-range start in chunk 1
                rng=0,
                retry=1,
            )
        assert excinfo.value.chunk_index == 1
        assert 10 ** 6 in excinfo.value.start_nodes


# ----------------------------------------------------------------------
# dead letters
# ----------------------------------------------------------------------
class TestDeadLetters:
    @pytest.mark.parametrize("workers", [1, 3])
    def test_dead_letter_names_exactly_the_injected_chunks(
        self, framework, reference, workers
    ):
        plan = FaultPlan(seed=5, rate=0.3, failures_per_chunk=None)
        corpus = parallel_walks(
            framework.walk_engine,
            num_walks=2,
            length=6,
            workers=workers,
            chunk_size=8,
            rng=11,
            fault_plan=plan,
            retry=1,  # retries disabled
            on_exhausted="dead-letter",
        )
        num_chunks = 8  # 60 nodes / chunk_size 8
        injected = plan.injected_chunks(num_chunks)
        assert sorted(d.chunk_index for d in corpus.failed_chunks) == injected
        assert not corpus.is_complete
        # Surviving chunks still contributed their exact walks.
        survivors = [
            w
            for i, w in enumerate(reference)
            if (i // (2 * 8)) not in injected  # 2 walks x 8 starts per chunk
        ]
        assert_same_corpus(corpus, survivors)

    def test_dead_letter_records_cause(self, framework):
        plan = FaultPlan(chunks={0}, failures_per_chunk=None)
        corpus = parallel_walks(
            framework.walk_engine,
            num_walks=1,
            length=4,
            workers=1,
            chunk_size=8,
            rng=0,
            fault_plan=plan,
            retry=1,
            on_exhausted="dead-letter",
        )
        (letter,) = corpus.failed_chunks
        assert isinstance(letter, DeadLetter)
        assert letter.attempts == 1
        assert "InjectedFaultError" in letter.error
        assert "chunk 0" in letter.describe()


# ----------------------------------------------------------------------
# hangs and corruption
# ----------------------------------------------------------------------
class TestTimeoutsAndCorruption:
    def test_timeout_retry_masks_hang_in_pool(self, framework, reference):
        plan = FaultPlan(chunks={2}, kind=FaultKind.HANG, hang_seconds=8.0)
        corpus = parallel_walks(
            framework.walk_engine,
            num_walks=2,
            length=6,
            workers=3,
            chunk_size=8,
            rng=11,
            fault_plan=plan,
            timeout=0.5,
            retry=RetryPolicy(max_attempts=3, base_delay=0.001),
        )
        assert_same_corpus(corpus, reference)

    def test_corrupt_results_are_detected_and_retried(
        self, framework, reference
    ):
        plan = FaultPlan(chunks={0, 4}, kind=FaultKind.CORRUPT)
        corpus = parallel_walks(
            framework.walk_engine,
            num_walks=2,
            length=6,
            workers=1,
            chunk_size=8,
            rng=11,
            fault_plan=plan,
            retry=RetryPolicy(max_attempts=2, base_delay=0.001),
        )
        assert_same_corpus(corpus, reference)

    def test_persistent_corruption_dead_letters(self, framework):
        plan = FaultPlan(
            chunks={1}, kind=FaultKind.CORRUPT, failures_per_chunk=None
        )
        corpus = parallel_walks(
            framework.walk_engine,
            num_walks=1,
            length=4,
            workers=1,
            chunk_size=8,
            rng=0,
            fault_plan=plan,
            retry=1,
            on_exhausted="dead-letter",
        )
        assert [d.chunk_index for d in corpus.failed_chunks] == [1]


# ----------------------------------------------------------------------
# checkpoint / resume
# ----------------------------------------------------------------------
class TestCheckpointResume:
    def test_interrupted_run_resumes_bit_identically(
        self, framework, reference, tmp_path
    ):
        path = tmp_path / "walks.ckpt"
        plan = FaultPlan(chunks={3}, failures_per_chunk=None)
        with pytest.raises(ChunkFailure):
            parallel_walks(
                framework.walk_engine,
                num_walks=2,
                length=6,
                workers=1,
                chunk_size=8,
                rng=11,
                fault_plan=plan,
                retry=1,
                checkpoint=path,
            )
        # Chunks 0-2 completed before the crash and were persisted.
        completed_before = sum(
            1 for line in path.read_text().splitlines() if '"chunk"' in line
        )
        assert completed_before == 3
        resumed = parallel_walks(
            framework.walk_engine,
            num_walks=2,
            length=6,
            workers=1,
            chunk_size=8,
            rng=11,
            checkpoint=path,
        )
        assert_same_corpus(resumed, reference)

    def test_completed_checkpoint_replays_without_rerunning(
        self, framework, reference, tmp_path
    ):
        path = tmp_path / "walks.ckpt"
        kwargs = dict(num_walks=2, length=6, workers=1, chunk_size=8, rng=11)
        parallel_walks(framework.walk_engine, checkpoint=path, **kwargs)
        size_after_first = path.stat().st_size
        replayed = parallel_walks(
            framework.walk_engine, checkpoint=path, **kwargs
        )
        assert path.stat().st_size == size_after_first  # nothing re-ran
        assert_same_corpus(replayed, reference)

    def test_mismatched_run_is_refused(self, framework, tmp_path):
        path = tmp_path / "walks.ckpt"
        parallel_walks(
            framework.walk_engine,
            num_walks=2,
            length=6,
            workers=1,
            chunk_size=8,
            rng=11,
            checkpoint=path,
        )
        with pytest.raises(CheckpointError):
            parallel_walks(
                framework.walk_engine,
                num_walks=2,
                length=7,  # different signature
                workers=1,
                chunk_size=8,
                rng=11,
                checkpoint=path,
            )
        with pytest.raises(CheckpointError):
            parallel_walks(
                framework.walk_engine,
                num_walks=2,
                length=6,
                workers=1,
                chunk_size=8,
                rng=12,  # same shape, different seeds
                checkpoint=path,
            )

    def test_torn_trailing_write_is_dropped(self, framework, tmp_path):
        path = tmp_path / "walks.ckpt"
        parallel_walks(
            framework.walk_engine,
            num_walks=1,
            length=4,
            workers=1,
            chunk_size=8,
            rng=11,
            checkpoint=path,
        )
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "chunk", "chunk": 99, "se')  # torn write
        store = WalkCheckpoint(path)
        signature = {
            "num_walks": 1,
            "length": 4,
            "num_chunks": 8,
            "num_nodes": framework.graph.num_nodes,
            "engine": "scalar",
            "backend": "",
            "layout": "",
        }
        completed = store.load(signature)
        assert sorted(completed) == list(range(8))  # torn record ignored
        # The fragment is also truncated away, so later appends start on
        # a clean line instead of fusing with it.
        assert not path.read_text().endswith('"se')

    def test_resume_after_torn_write_stays_resumable(
        self, framework, reference, tmp_path
    ):
        """Torn fragment + resume + resume again: the second resume must
        not choke on a line fused with the truncated fragment."""
        path = tmp_path / "walks.ckpt"
        kwargs = dict(num_walks=2, length=6, workers=1, chunk_size=8, rng=11)
        parallel_walks(framework.walk_engine, checkpoint=path, **kwargs)
        # Keep header + 3 chunks, then simulate a torn trailing write.
        lines = path.read_text().splitlines(keepends=True)[:4]
        path.write_text("".join(lines) + '{"kind": "chunk", "chunk": 9, "se')
        first = parallel_walks(framework.walk_engine, checkpoint=path, **kwargs)
        assert_same_corpus(first, reference)
        second = parallel_walks(framework.walk_engine, checkpoint=path, **kwargs)
        assert_same_corpus(second, reference)

    def test_checkpoint_with_only_torn_fragment_restarts(
        self, framework, reference, tmp_path
    ):
        path = tmp_path / "walks.ckpt"
        path.write_text('{"kind": "hea')  # interrupted during the header
        corpus = parallel_walks(
            framework.walk_engine,
            num_walks=2,
            length=6,
            workers=1,
            chunk_size=8,
            rng=11,
            checkpoint=path,
        )
        assert_same_corpus(corpus, reference)


# ----------------------------------------------------------------------
# graceful OOM degradation
# ----------------------------------------------------------------------
class TestGracefulDegradation:
    @pytest.fixture(scope="class")
    def model(self):
        return Node2VecModel(0.5, 2.0)

    def test_raise_policy_unchanged(self, graph, model):
        full = MemoryAwareFramework(graph, model, budget=1e6, rng=0)
        physical = full.meter.used_bytes * 0.6
        with pytest.raises(SimulatedOOMError):
            MemoryAwareFramework(
                graph, model, budget=1e6, rng=0, physical_memory=physical
            )

    def test_lp_run_completes_via_trace_reversal(self, graph, model):
        full = MemoryAwareFramework(graph, model, budget=1e6, rng=0)
        physical = full.meter.used_bytes * 0.6
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            fw = MemoryAwareFramework(
                graph,
                model,
                budget=1e6,
                rng=0,
                physical_memory=physical,
                oom_policy="degrade",
            )
        assert any(
            issubclass(w.category, DegradedRunWarning) for w in caught
        )
        log = fw.degradation_log
        assert log is not None and log.events
        # Byte accounting: the log explains exactly the footprint shrink.
        assert fw.meter.used_bytes <= physical
        assert log.initial_bytes == pytest.approx(full.meter.used_bytes)
        assert log.final_bytes == pytest.approx(fw.meter.used_bytes)
        assert log.total_reclaimed == pytest.approx(
            log.initial_bytes - fw.meter.used_bytes
        )
        running = log.initial_bytes
        for event in log.events:
            running -= event.reclaimed_bytes
            assert event.used_after == pytest.approx(running)
        # Downgrades follow the chain direction: never to more memory.
        for event in log.events:
            node = event.node
            assert (
                fw.cost_table.memory[node, int(event.chosen)]
                <= fw.cost_table.memory[node, int(event.previous)]
            )

    def test_degraded_walks_keep_tier1_semantics(self, graph, model):
        """Degradation changes speed, not correctness: walks still follow
        edges and start where asked."""
        full = MemoryAwareFramework(graph, model, budget=1e6, rng=0)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedRunWarning)
            fw = MemoryAwareFramework(
                graph,
                model,
                budget=1e6,
                rng=0,
                physical_memory=full.meter.used_bytes * 0.5,
                oom_policy="degrade",
            )
        corpus = parallel_walks(
            fw.walk_engine, num_walks=1, length=8, workers=1, rng=3
        )
        for walk in list(corpus)[:40]:
            for a, b in zip(walk, walk[1:]):
                assert graph.has_edge(int(a), int(b))

    def test_all_alias_baseline_degrades_down_the_chain(self, graph, model):
        full = MemoryAwareFramework.memory_unaware(
            graph, model, SamplerKind.ALIAS
        )
        physical = full.meter.used_bytes * 0.6
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            fw = MemoryAwareFramework.memory_unaware(
                graph,
                model,
                SamplerKind.ALIAS,
                physical_memory=physical,
                oom_policy="degrade",
            )
        assert any(issubclass(w.category, DegradedRunWarning) for w in caught)
        assert fw.meter.used_bytes <= physical
        for event in fw.degradation_log.events:
            # alias -> rejection or rejection -> naive, never upward
            assert int(event.chosen) < int(event.previous)

    def test_unfittable_footprint_still_ooms(self, graph, model):
        with pytest.raises(SimulatedOOMError):
            MemoryAwareFramework(
                graph,
                model,
                budget=1e6,
                rng=0,
                physical_memory=1.0,  # below even the all-naive footprint
                oom_policy="degrade",
            )

    def test_no_degradation_when_fitting(self, graph, model):
        fw = MemoryAwareFramework(
            graph,
            model,
            budget=1e6,
            rng=0,
            physical_memory=1e9,
            oom_policy="degrade",
        )
        assert fw.degradation_log is None

    def test_chain_downgrade_accounts_every_byte(self, graph, model):
        fw = MemoryAwareFramework.memory_unaware(graph, model, SamplerKind.ALIAS)
        mask = graph.degrees > 0
        rows = np.arange(graph.num_nodes)
        initial = float(
            fw.cost_table.memory[rows, fw.assignment.samplers][mask].sum()
        )
        limit = initial * 0.7
        samplers, events = chain_downgrade(
            fw.cost_table, fw.assignment.samplers, mask, limit
        )
        final = float(fw.cost_table.memory[rows, samplers][mask].sum())
        assert final <= limit
        assert sum(e.reclaimed_bytes for e in events) == pytest.approx(
            initial - final
        )


# ----------------------------------------------------------------------
# partitioned deployment
# ----------------------------------------------------------------------
class TestPartitionedResilience:
    def test_partition_aligned_generation_with_faults(self, graph):
        from repro.distributed import PartitionedFramework, hash_partition

        partition = hash_partition(graph.num_nodes, 3)
        pf = PartitionedFramework(
            graph,
            Node2VecModel(0.5, 2.0),
            partition,
            worker_budgets=[4e5, 4e5, 4e5],
        )
        clean = pf.generate_walks(
            num_walks=1, length=5, workers=1, chunk_size=8, rng=9
        )
        recovered = pf.generate_walks(
            num_walks=1,
            length=5,
            workers=1,
            chunk_size=8,
            rng=9,
            fault_plan=FaultPlan(seed=2, rate=0.4, failures_per_chunk=1),
            retry=RetryPolicy(max_attempts=3, base_delay=0.001),
        )
        assert_same_corpus(recovered, clean)

    def test_partitioned_dead_letter(self, graph):
        from repro.distributed import PartitionedFramework, hash_partition

        partition = hash_partition(graph.num_nodes, 2)
        pf = PartitionedFramework(
            graph,
            Node2VecModel(0.5, 2.0),
            partition,
            worker_budgets=[5e5, 5e5],
        )
        plan = FaultPlan(chunks={0}, failures_per_chunk=None)
        corpus = pf.generate_walks(
            num_walks=1,
            length=5,
            workers=1,
            chunk_size=8,
            rng=9,
            fault_plan=plan,
            retry=1,
            on_exhausted="dead-letter",
        )
        assert [d.chunk_index for d in corpus.failed_chunks] == [0]


# ----------------------------------------------------------------------
# supervisor unit behaviour
# ----------------------------------------------------------------------
class TestSupervisorUnits:
    def test_event_log_records_recovery(self, framework, reference):
        plan = FaultPlan(chunks={1}, failures_per_chunk=1)
        from dataclasses import dataclass, field, replace  # noqa: F401
        from repro.walks.parallel import WalkChunkTask, _walk_chunk
        import repro.walks.parallel as parallel_module

        tasks = [
            WalkChunkTask(
                index=i,
                nodes=(i,),
                num_walks=1,
                length=3,
                seed=i,
                fault_plan=plan,
            )
            for i in range(3)
        ]
        supervisor = ChunkSupervisor(
            _walk_chunk,
            policy=RetryPolicy(max_attempts=2, base_delay=0.001),
        )
        parallel_module._SHARED_ENGINE = framework.walk_engine
        try:
            run = supervisor.run_sequential(tasks)
        finally:
            parallel_module._SHARED_ENGINE = None
        assert sorted(run.results) == [0, 1, 2]
        assert run.attempts[1] == 2 and run.total_retries == 1
        kinds = [e["event"] for e in run.events]
        assert "failure" in kinds and "retry" in kinds and "recovered" in kinds

    def test_invalid_on_exhausted_rejected(self, framework):
        with pytest.raises(WalkError):
            parallel_walks(
                framework.walk_engine,
                num_walks=1,
                length=3,
                workers=1,
                rng=0,
                on_exhausted="ignore",
            )
