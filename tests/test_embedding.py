"""Unit tests for the skip-gram embedding trainer."""

import numpy as np
import pytest

from repro import MemoryAwareFramework, Node2VecModel, WalkCorpus
from repro.embedding import train_embeddings
from repro.exceptions import ModelError
from repro.graph import from_edges


@pytest.fixture(scope="module")
def two_cliques():
    """Two 5-cliques joined by a single bridge edge."""
    edges = []
    for base in (0, 5):
        for i in range(5):
            for j in range(i + 1, 5):
                edges.append((base + i, base + j))
    edges.append((0, 5))
    return from_edges(edges)


@pytest.fixture(scope="module")
def clique_corpus(two_cliques):
    fw = MemoryAwareFramework(two_cliques, Node2VecModel(0.5, 2.0), budget=1e6, rng=3)
    walks = fw.generate_walks(num_walks=20, length=20, rng=3)
    return WalkCorpus.from_walks(walks)


class TestTraining:
    def test_shapes(self, clique_corpus, two_cliques):
        model = train_embeddings(
            clique_corpus, two_cliques.num_nodes, dimensions=16, epochs=1, rng=0
        )
        assert model.in_vectors.shape == (10, 16)
        assert model.num_nodes == 10
        assert model.dimensions == 16

    def test_community_structure_learned(self, clique_corpus, two_cliques):
        model = train_embeddings(
            clique_corpus, two_cliques.num_nodes,
            dimensions=16, epochs=3, window=4, rng=0,
        )
        # Same-clique similarity must exceed cross-clique similarity.
        same = np.mean([model.similarity(1, j) for j in (2, 3, 4)])
        cross = np.mean([model.similarity(1, j) for j in (6, 7, 8)])
        assert same > cross

    def test_most_similar_excludes_self(self, clique_corpus, two_cliques):
        model = train_embeddings(
            clique_corpus, two_cliques.num_nodes, dimensions=8, rng=0
        )
        neighbors = model.most_similar(3, k=5)
        assert len(neighbors) == 5
        assert all(node != 3 for node, _ in neighbors)

    def test_deterministic(self, clique_corpus, two_cliques):
        a = train_embeddings(clique_corpus, 10, dimensions=8, rng=1)
        b = train_embeddings(clique_corpus, 10, dimensions=8, rng=1)
        assert np.allclose(a.in_vectors, b.in_vectors)

    def test_zero_negative_samples(self, clique_corpus):
        model = train_embeddings(clique_corpus, 10, dimensions=8, negative=0, rng=0)
        assert model.num_nodes == 10

    def test_vector_accessor(self, clique_corpus):
        model = train_embeddings(clique_corpus, 10, dimensions=8, rng=0)
        assert model.vector(0).shape == (8,)


class TestValidation:
    def test_empty_corpus(self):
        with pytest.raises(ModelError, match="empty corpus"):
            train_embeddings(WalkCorpus(), 10)

    def test_invalid_hyperparameters(self, clique_corpus):
        with pytest.raises(ModelError):
            train_embeddings(clique_corpus, 10, dimensions=0)
        with pytest.raises(ModelError):
            train_embeddings(clique_corpus, 10, window=0)
        with pytest.raises(ModelError):
            train_embeddings(clique_corpus, 10, epochs=0)

    def test_too_few_nodes(self, clique_corpus):
        with pytest.raises(ModelError, match="beyond num_nodes"):
            train_embeddings(clique_corpus, 2)

    def test_walks_too_short(self):
        corpus = WalkCorpus.from_walks([[0]])
        with pytest.raises(ModelError, match="no context pairs"):
            train_embeddings(corpus, 1)

    def test_similarity_zero_vector(self, clique_corpus):
        model = train_embeddings(clique_corpus, 10, dimensions=4, rng=0)
        model.in_vectors[0] = 0.0
        assert model.similarity(0, 1) == 0.0
