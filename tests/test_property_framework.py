"""Property-based tests spanning framework-level invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    CostParams,
    Node2VecModel,
    build_cost_table,
    compute_bounding_constants,
    from_edges,
    lp_greedy,
)
from repro.framework.serialize import (
    load_assignment,
    load_bounding_constants,
    save_assignment,
    save_bounding_constants,
)
from repro.optimizer import Assignment
from repro.optimizer.inverse import min_memory_for_time
from repro.walks.batch import batch_walks

SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.function_scoped_fixture,
    ],
)


@st.composite
def graph_strategy(draw):
    n = draw(st.integers(min_value=4, max_value=12))
    extra = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=15,
        )
    )
    edges = [(i, i + 1) for i in range(n - 1)]
    edges.extend((u, v) for u, v in extra if u != v)
    unique = sorted({(min(u, v), max(u, v)) for u, v in edges})
    return from_edges(unique, num_nodes=n)


class TestSerializeProperties:
    @given(
        samplers=st.lists(
            st.integers(min_value=0, max_value=2), min_size=1, max_size=30
        ),
        used=st.floats(min_value=0, max_value=1e12, allow_nan=False),
        total=st.floats(min_value=0, max_value=1e12, allow_nan=False),
    )
    @SETTINGS
    def test_assignment_round_trip(self, samplers, used, total, tmp_path):
        original = Assignment(
            samplers=np.asarray(samplers, dtype=np.int8),
            used_memory=used,
            total_time=total,
            budget=used + 1.0,
            algorithm="property-test",
        )
        path = tmp_path / "a.npz"
        save_assignment(original, path)
        loaded = load_assignment(path)
        assert np.array_equal(loaded.samplers, original.samplers)
        assert loaded.used_memory == pytest.approx(original.used_memory)
        assert loaded.total_time == pytest.approx(original.total_time)

    @given(graph=graph_strategy())
    @SETTINGS
    def test_constants_round_trip(self, graph, tmp_path):
        model = Node2VecModel(0.25, 4.0)
        constants = compute_bounding_constants(graph, model)
        path = tmp_path / "c.npz"
        save_bounding_constants(constants, path)
        loaded = load_bounding_constants(path)
        assert np.allclose(loaded.values, constants.values)
        assert loaded.exact == constants.exact


class TestInverseForwardDuality:
    @given(
        graph=graph_strategy(),
        fraction=st.floats(min_value=0.05, max_value=1.0),
    )
    @SETTINGS
    def test_duality(self, graph, fraction):
        """inverse(target).memory fed back into forward lp_greedy gives an
        assignment at least as fast as the target — on ANY instance."""
        model = Node2VecModel(0.25, 4.0)
        constants = compute_bounding_constants(graph, model)
        table = build_cost_table(
            graph, constants, CostParams(fixed_check_cost=1.0)
        )
        all_naive = float(table.time[:, 0].sum())
        saturated = lp_greedy(table, table.max_memory()).total_time
        target = saturated + fraction * (all_naive - saturated)
        inverse = min_memory_for_time(table, target)
        assert inverse.total_time <= target + 1e-9
        forward = lp_greedy(table, inverse.used_memory)
        assert forward.total_time <= target + 1e-9


class TestBatchWalkProperties:
    @given(
        graph=graph_strategy(),
        length=st.integers(min_value=0, max_value=8),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @SETTINGS
    def test_walks_follow_edges_and_lengths(self, graph, length, seed):
        model = Node2VecModel(0.5, 2.0)
        corpus = batch_walks(graph, model, num_walks=2, length=length, rng=seed)
        for walk in corpus:
            assert 1 <= len(walk) <= length + 1
            for a, b in zip(walk, walk[1:]):
                assert graph.has_edge(int(a), int(b))
