"""Tests for budget sweeps."""

import pytest

from repro import Node2VecModel, compute_bounding_constants
from repro.analysis import sweep_budgets
from repro.exceptions import OptimizerError


@pytest.fixture(scope="module")
def sweep(medium_graph):
    model = Node2VecModel(0.25, 4.0)
    constants = compute_bounding_constants(medium_graph, model)
    return sweep_budgets(
        medium_graph, model,
        ratios=(0.05, 0.1, 0.3, 0.6, 1.0),
        constants=constants,
    )


class TestSweep:
    def test_monotone_tradeoff(self, sweep):
        times = [p.modeled_time for p in sweep.points]
        assert times == sorted(times, reverse=True)
        used = [p.used_bytes for p in sweep.points]
        assert used == sorted(used)

    def test_budget_respected_everywhere(self, sweep):
        for p in sweep.points:
            assert p.used_bytes <= max(p.budget_bytes, sweep.min_budget) + 1e-9

    def test_mix_shifts_toward_alias(self, sweep):
        assert sweep.points[-1].alias_nodes >= sweep.points[0].alias_nodes
        assert sweep.points[0].naive_nodes + sweep.points[0].rejection_nodes >= (
            sweep.points[-1].naive_nodes + sweep.points[-1].rejection_nodes
        )

    def test_speedup_at(self, sweep):
        assert sweep.speedup_at(1.0) >= sweep.speedup_at(0.05) == pytest.approx(1.0)

    def test_knee_ratio_in_range(self, sweep):
        knee = sweep.knee_ratio()
        assert 0.05 <= knee <= 1.0

    def test_render(self, sweep):
        text = sweep.render()
        assert "modeled time" in text
        assert len(text.splitlines()) == len(sweep.points) + 1

    def test_matches_from_scratch(self, medium_graph):
        """The adaptive shortcut must equal independent lp_greedy runs."""
        from repro import CostParams, build_cost_table, lp_greedy

        model = Node2VecModel(0.25, 4.0)
        constants = compute_bounding_constants(medium_graph, model)
        table = build_cost_table(medium_graph, constants, CostParams())
        sweep = sweep_budgets(
            medium_graph, model, ratios=(0.1, 0.5), constants=constants
        )
        for point in sweep.points:
            reference = lp_greedy(table, point.budget_bytes)
            assert point.modeled_time == pytest.approx(reference.total_time)

    def test_invalid_ratios(self, medium_graph):
        with pytest.raises(OptimizerError):
            sweep_budgets(medium_graph, Node2VecModel(1, 1), ratios=())
