"""Tests for subgraph extraction."""

import numpy as np
import pytest

from repro import from_edges
from repro.exceptions import GraphFormatError
from repro.graph import induced_subgraph, largest_connected_component


class TestInducedSubgraph:
    def test_preserves_internal_edges(self, toy_graph):
        sub, ids = induced_subgraph(toy_graph, [0, 2, 3])
        assert sub.num_nodes == 3
        assert list(ids) == [0, 2, 3]
        # Triangle 0-2-3 survives (relabelled 0-1-2).
        assert sub.has_edge(0, 1) and sub.has_edge(0, 2) and sub.has_edge(1, 2)

    def test_drops_external_edges(self, toy_graph):
        sub, _ = induced_subgraph(toy_graph, [1, 2])
        # 1 and 2 are not adjacent in the toy graph.
        assert sub.num_edges == 0

    def test_preserves_weights(self, weighted_graph):
        sub, ids = induced_subgraph(weighted_graph, [0, 2])
        original = weighted_graph.edge_weight(0, 2)
        assert sub.edge_weight(0, 1) == pytest.approx(original)

    def test_duplicate_and_unsorted_input(self, toy_graph):
        sub, ids = induced_subgraph(toy_graph, [3, 0, 3, 2])
        assert sub.num_nodes == 3
        assert list(ids) == [0, 2, 3]

    def test_out_of_range(self, toy_graph):
        with pytest.raises(GraphFormatError):
            induced_subgraph(toy_graph, [0, 99])

    def test_empty_selection(self, toy_graph):
        sub, ids = induced_subgraph(toy_graph, [])
        assert sub.num_nodes == 0
        assert len(ids) == 0


class TestLargestComponent:
    def test_picks_biggest(self):
        g = from_edges([(0, 1), (1, 2), (3, 4)], num_nodes=6)
        sub, ids = largest_connected_component(g)
        assert sub.num_nodes == 3
        assert set(ids) == {0, 1, 2}

    def test_connected_graph_unchanged(self, toy_graph):
        sub, ids = largest_connected_component(toy_graph)
        assert sub.num_nodes == toy_graph.num_nodes
        assert sub == toy_graph

    def test_isolated_nodes_excluded(self):
        g = from_edges([(0, 1)], num_nodes=5)
        sub, ids = largest_connected_component(g)
        assert sub.num_nodes == 2

    def test_empty_graph(self):
        g = from_edges([], num_nodes=0)
        with pytest.raises(GraphFormatError):
            largest_connected_component(g)
