"""Tests for the edge-similarity second-order model."""

import numpy as np
import pytest

from repro import MemoryAwareFramework, SamplerKind, get_model
from repro.exceptions import ModelError
from repro.framework import build_node_sampler
from repro.graph import complete_graph, from_edges
from repro.models import EdgeSimilarityModel
from repro.models.edge_similarity import _closed_jaccard
from repro.sampling.utils import empirical_distribution, total_variation_distance


class TestJaccard:
    def test_identical_closed_neighborhoods(self):
        g = complete_graph(4)
        # In a clique all closed neighbourhoods coincide.
        assert _closed_jaccard(g, 0, 1) == pytest.approx(1.0)

    def test_disjoint(self):
        g = from_edges([(0, 1), (2, 3)])
        assert _closed_jaccard(g, 0, 2) == 0.0

    def test_partial_overlap(self, toy_graph):
        # closed(2) = {0, 2, 3}, closed(3) = {0, 2, 3} -> Jaccard 1.
        assert _closed_jaccard(toy_graph, 2, 3) == pytest.approx(1.0)
        # closed(1) = {0, 1}, closed(2) = {0, 2, 3} -> 1/4.
        assert _closed_jaccard(toy_graph, 1, 2) == pytest.approx(0.25)


class TestModel:
    def test_registered(self):
        model = get_model("edge-similarity", gamma=0.5)
        assert isinstance(model, EdgeSimilarityModel)

    def test_invalid_gamma(self):
        with pytest.raises(ModelError):
            EdgeSimilarityModel(gamma=0.0)

    def test_biased_weight_formula(self, toy_graph):
        model = EdgeSimilarityModel(gamma=0.5)
        expected = 1.0 * (0.5 + _closed_jaccard(toy_graph, 1, 3))
        assert model.biased_weight(toy_graph, 1, 0, 3) == pytest.approx(expected)

    def test_vectorised_matches_scalar(self, toy_graph):
        model = EdgeSimilarityModel(gamma=0.3)
        for u, v in [(1, 0), (2, 0), (0, 2)]:
            vec = model.biased_weights(toy_graph, u, v)
            scalar = [
                model.biased_weight(toy_graph, u, v, int(z))
                for z in toy_graph.neighbors(v)
            ]
            assert np.allclose(vec, scalar)

    def test_subset_matches_full(self, medium_graph):
        model = EdgeSimilarityModel(gamma=0.5)
        v = int(medium_graph.degrees.argmax())
        u = int(medium_graph.neighbors(v)[0])
        full = model.target_ratios(medium_graph, u, v)
        subset = model.target_ratios_subset(
            medium_graph, u, v, medium_graph.neighbors(v)[:5]
        )
        assert np.allclose(subset, full[:5])

    def test_ratio_bounds(self, medium_graph):
        model = EdgeSimilarityModel(gamma=0.5)
        bound = model.max_ratio_bound(medium_graph)
        assert bound == 1.5
        v = int(medium_graph.degrees.argmax())
        for u in medium_graph.neighbors(v)[:5]:
            ratios = model.target_ratios(medium_graph, int(u), v)
            assert np.all(ratios >= 0.5)
            assert np.all(ratios <= bound + 1e-12)

    def test_similar_nodes_preferred(self, toy_graph):
        """From edge (1, 0), the triangle nodes 2/3 are more similar to
        each other than to the leaf — the walk biases accordingly."""
        model = EdgeSimilarityModel(gamma=0.1)
        p = model.e2e_distribution(toy_graph, 2, 0)
        neighbors = list(toy_graph.neighbors(0))
        # Candidate 3 (same triangle as previous node 2) beats candidate 1.
        assert p[neighbors.index(3)] > p[neighbors.index(1)]


class TestSamplers:
    @pytest.mark.parametrize("kind", list(SamplerKind))
    def test_all_samplers_match_distribution(self, kind, toy_graph, rng):
        model = EdgeSimilarityModel(gamma=0.5)
        u, v = 2, 0
        sampler = build_node_sampler(kind, toy_graph, model, v)
        exact = model.e2e_distribution(toy_graph, u, v)
        samples = np.array([sampler.sample(u, rng) for _ in range(6000)])
        positions = np.searchsorted(toy_graph.neighbors(v), samples)
        emp = empirical_distribution(positions, toy_graph.degree(v))
        assert total_variation_distance(emp, exact) < 0.05

    def test_full_framework_run(self, medium_graph):
        model = EdgeSimilarityModel(gamma=0.5)
        fw = MemoryAwareFramework(medium_graph, model, budget=5e5, rng=0)
        walk = fw.walk(0, 12)
        for a, b in zip(walk, walk[1:]):
            assert medium_graph.has_edge(int(a), int(b))
