"""Unit tests for the optimizer algorithms (dominance, greedy, exact)."""

import numpy as np
import pytest

from repro import (
    CostParams,
    SamplerKind,
    build_cost_table,
    compute_bounding_constants,
    degree_greedy,
    dp_optimal,
    exhaustive_optimal,
    lp_greedy,
)
from repro.exceptions import (
    AssignmentError,
    InfeasibleBudgetError,
    OptimizerError,
)
from repro.optimizer import AssignmentProblem, eliminate_dominated, node_chains
from repro.optimizer.lp_greedy import build_schedule, lmckp_lower_bound

FIGURE5_PARAMS = CostParams(float_bytes=4, int_bytes=4, fixed_check_cost=1.0)


@pytest.fixture
def toy_table(toy_graph, nv_model):
    constants = compute_bounding_constants(toy_graph, nv_model)
    return build_cost_table(toy_graph, constants, FIGURE5_PARAMS)


@pytest.fixture
def medium_table(medium_graph, nv_model):
    constants = compute_bounding_constants(medium_graph, nv_model)
    return build_cost_table(medium_graph, constants, CostParams())


class TestDominance:
    def test_keeps_proper_chain(self):
        kept = eliminate_dominated(
            memory=np.array([1.0, 5.0, 20.0]),
            time=np.array([10.0, 4.0, 1.0]),
        )
        assert kept == [0, 1, 2]

    def test_p_domination_drops_worse_option(self):
        # Option 1 uses more memory AND more time than option 0.
        kept = eliminate_dominated(
            memory=np.array([1.0, 5.0, 20.0]),
            time=np.array([4.0, 10.0, 1.0]),
        )
        assert kept == [0, 2]

    def test_p_domination_ties(self):
        kept = eliminate_dominated(
            memory=np.array([1.0, 1.0]),
            time=np.array([3.0, 3.0]),
        )
        assert len(kept) == 1

    def test_lp_domination_drops_above_segment(self):
        # Middle point above segment (0,10) - (20,0): at M=10 the hull line
        # is T=5 but the middle has T=8 → LP-dominated.
        kept = eliminate_dominated(
            memory=np.array([0.0, 10.0, 20.0]),
            time=np.array([10.0, 8.0, 0.0]),
        )
        assert kept == [0, 2]

    def test_collinear_kept(self):
        kept = eliminate_dominated(
            memory=np.array([0.0, 10.0, 20.0]),
            time=np.array([10.0, 5.0, 0.0]),
        )
        assert kept == [0, 1, 2]

    def test_availability_mask(self):
        kept = eliminate_dominated(
            memory=np.array([1.0, 5.0, 20.0]),
            time=np.array([10.0, 4.0, 1.0]),
            available=np.array([True, False, True]),
        )
        assert kept == [0, 2]

    def test_builtin_cost_model_has_no_domination(self, toy_table):
        chains = node_chains(toy_table)
        # Nodes 0, 2, 3 keep all three; node 1 (degree 1) loses alias to
        # P-domination (equal time, more memory than rejection).
        assert chains[0] == [0, 1, 2]
        assert chains[2] == [0, 1, 2]
        assert chains[1] == [0, 1]


class TestLpGreedy:
    def test_figure5_final_assignment(self, toy_table):
        """The paper's worked example: budget 188 → {0:R, 1:R, 2:A, 3:A}."""
        assignment = lp_greedy(toy_table, 188)
        assert assignment[0] is SamplerKind.REJECTION
        assert assignment[1] is SamplerKind.REJECTION
        assert assignment[2] is SamplerKind.ALIAS
        assert assignment[3] is SamplerKind.ALIAS
        assert assignment.used_memory == pytest.approx(144.0)

    def test_figure5_trace(self, toy_table):
        """The figure's update log: N→R for {2,3},1,0 then R→A for {2,3}.

        Nodes 2 and 3 share the steepest gradient (-0.114), so their mutual
        order is an arbitrary tie-break (the figure lists 3 first, a stable
        sort lists 2 first); the running memory totals are identical either
        way because the tied steps have equal ΔM.
        """
        assignment = lp_greedy(toy_table, 188)
        trace = [(e.node, e.previous.short, e.chosen.short) for e in assignment.trace]
        assert sorted(trace[:2]) == [(2, "N", "R"), (3, "N", "R")]
        assert trace[2] == (1, "N", "R")
        assert trace[3] == (0, "N", "R")
        assert sorted(trace[4:]) == [(2, "R", "A"), (3, "R", "A")]
        mems = [e.used_memory_after for e in assignment.trace]
        assert mems == [33, 54, 63, 96, 120, 144]

    def test_figure5_gradients(self, toy_table):
        """The figure's sorted gradient values."""
        assignment = lp_greedy(toy_table, 188)
        grads = [round(e.gradient, 3) for e in assignment.trace]
        assert grads == [-0.114, -0.114, -0.111, -0.109, -0.025, -0.025]

    def test_all_naive_at_minimum_budget(self, toy_table):
        assignment = lp_greedy(toy_table, 12)
        assert all(assignment[v] is SamplerKind.NAIVE for v in range(4))

    def test_saturates_at_large_budget(self, toy_table):
        assignment = lp_greedy(toy_table, 10_000)
        # Hub and triangle nodes go alias; the degree-1 node's alias option
        # is P-dominated, so it tops out at rejection.
        assert assignment[0] is SamplerKind.ALIAS
        assert assignment[1] is SamplerKind.REJECTION
        assert assignment[2] is SamplerKind.ALIAS

    def test_infeasible_budget(self, toy_table):
        with pytest.raises(InfeasibleBudgetError):
            lp_greedy(toy_table, 5)

    def test_never_exceeds_budget(self, medium_table):
        for budget_ratio in (0.05, 0.2, 0.5, 0.9):
            budget = medium_table.max_memory() * budget_ratio
            assignment = lp_greedy(medium_table, budget)
            assert assignment.used_memory <= budget

    def test_monotone_in_budget(self, medium_table):
        times = []
        for ratio in (0.1, 0.3, 0.5, 0.8, 1.0):
            assignment = lp_greedy(medium_table, medium_table.max_memory() * ratio)
            times.append(assignment.total_time)
        assert times == sorted(times, reverse=True)

    def test_time_bookkeeping_consistent(self, medium_table):
        assignment = lp_greedy(medium_table, medium_table.max_memory() * 0.4)
        recomputed = medium_table.assignment_time(assignment.samplers)
        assert assignment.total_time == pytest.approx(recomputed)

    def test_counts_and_describe(self, toy_table):
        assignment = lp_greedy(toy_table, 188)
        counts = assignment.counts()
        assert counts[SamplerKind.REJECTION] == 2
        assert counts[SamplerKind.ALIAS] == 2
        assert "R=2" in assignment.describe()


class TestLmckpBound:
    def test_lower_bounds_greedy(self, medium_table):
        for ratio in (0.1, 0.4, 0.7):
            budget = medium_table.max_memory() * ratio
            bound = lmckp_lower_bound(medium_table, budget)
            greedy = lp_greedy(medium_table, budget).total_time
            assert bound <= greedy + 1e-9

    def test_equals_greedy_when_saturated(self, toy_table):
        budget = toy_table.max_memory() * 2
        assert lmckp_lower_bound(toy_table, budget) == pytest.approx(
            lp_greedy(toy_table, budget).total_time
        )


class TestDegreeGreedy:
    def test_respects_budget(self, medium_table, medium_graph):
        for increasing in (True, False):
            budget = medium_table.max_memory() * 0.2
            assignment = degree_greedy(
                medium_table, budget, medium_graph.degrees, increasing=increasing
            )
            assert assignment.used_memory <= budget

    def test_inc_prefers_small_nodes(self, medium_table, medium_graph):
        budget = medium_table.max_memory() * 0.1
        inc = degree_greedy(medium_table, budget, medium_graph.degrees, increasing=True)
        # The smallest-degree node should have been upgraded to alias.
        smallest = int(np.argmin(medium_graph.degrees))
        assert inc[smallest] is SamplerKind.ALIAS

    def test_dec_prefers_large_nodes(self, medium_table, medium_graph):
        budget = medium_table.max_memory() * 0.1
        dec = degree_greedy(medium_table, budget, medium_graph.degrees, increasing=False)
        largest = int(np.argmax(medium_graph.degrees))
        assert dec[largest] is SamplerKind.ALIAS

    def test_saturating_budget_all_alias(self, medium_table, medium_graph):
        assignment = degree_greedy(
            medium_table, medium_table.max_memory(), medium_graph.degrees
        )
        non_isolated = medium_graph.degrees > 0
        assert np.all(
            assignment.samplers[non_isolated] == SamplerKind.ALIAS
        )

    def test_lp_beats_degree_at_small_budget(self, medium_table, medium_graph):
        """The paper's core Figure 7 claim, as an invariant."""
        budget = medium_table.max_memory() * 0.1
        lp = lp_greedy(medium_table, budget)
        inc = degree_greedy(medium_table, budget, medium_graph.degrees, increasing=True)
        dec = degree_greedy(medium_table, budget, medium_graph.degrees, increasing=False)
        assert lp.total_time <= inc.total_time
        assert lp.total_time <= dec.total_time

    def test_degree_length_mismatch(self, medium_table):
        with pytest.raises(OptimizerError):
            degree_greedy(medium_table, 1e9, np.array([1, 2, 3]))


class TestExactSolvers:
    def test_exhaustive_on_figure5(self, toy_table):
        optimal = exhaustive_optimal(toy_table, 188)
        greedy = lp_greedy(toy_table, 188)
        assert optimal.total_time <= greedy.total_time + 1e-9
        # On the worked example the exact optimum (hub on alias: 4.6) beats
        # the gradient greedy (5.41) — the expected MCKP approximation gap,
        # well inside the Theorem 4 factor.
        assert optimal.total_time == pytest.approx(4.6)
        assert greedy.total_time == pytest.approx(5.413, abs=0.01)
        assert greedy.total_time <= 2 * toy_table.num_nodes * optimal.total_time

    def test_exhaustive_node_limit(self, medium_table):
        with pytest.raises(OptimizerError, match="16 nodes"):
            exhaustive_optimal(medium_table, 1e12)

    def test_dp_matches_exhaustive(self, toy_table):
        for budget in (50, 100, 188, 250):
            dp = dp_optimal(toy_table, budget)
            brute = exhaustive_optimal(toy_table, budget)
            assert dp.total_time == pytest.approx(brute.total_time)

    def test_dp_respects_budget(self, toy_table):
        dp = dp_optimal(toy_table, 150)
        assert dp.used_memory <= 150

    def test_dp_invalid_resolution(self, toy_table):
        with pytest.raises(OptimizerError):
            dp_optimal(toy_table, 188, resolution=0)

    def test_theorem4_bound_holds(self, toy_graph, nv_model):
        """OPT <= A <= max{(c+1)/c, c} d_max OPT on the worked example."""
        constants = compute_bounding_constants(toy_graph, nv_model)
        table = build_cost_table(toy_graph, constants, FIGURE5_PARAMS)
        d_max = toy_graph.max_degree
        c = 1.0
        factor = max((c + 1) / c, c) * d_max
        for budget in (12, 50, 100, 188, 300):
            opt = exhaustive_optimal(table, budget).total_time
            greedy = lp_greedy(table, budget).total_time
            assert opt <= greedy + 1e-9
            assert greedy <= factor * opt + 1e-9


class TestAssignmentProblem:
    def test_feasibility_check(self, toy_table):
        with pytest.raises(InfeasibleBudgetError):
            AssignmentProblem(toy_table, 1.0)

    def test_invalid_budget(self, toy_table):
        with pytest.raises(OptimizerError):
            AssignmentProblem(toy_table, float("nan"))

    def test_saturating_budget(self, toy_table):
        problem = AssignmentProblem(toy_table, 500)
        assert problem.saturating_budget() == toy_table.max_memory()

    def test_standard_mckp_profits(self, toy_table):
        problem = AssignmentProblem(toy_table, 188)
        profits, weights, capacity = problem.to_standard_mckp()
        assert capacity == 188
        assert np.all(profits >= 0)
        # Minimising time == maximising profit: ordering inverted.
        assert profits[0, SamplerKind.ALIAS] > profits[0, SamplerKind.NAIVE]

    def test_theorem2_complement_identity(self, toy_table):
        """Σ M* x >= |V| M_max - M  <=>  Σ M x <= M (Theorem 2)."""
        problem = AssignmentProblem(toy_table, 188)
        complement, threshold = problem.complemented_constraint()
        rows = np.arange(toy_table.num_nodes)
        rng = np.random.default_rng(0)
        for _ in range(20):
            cols = rng.integers(0, 3, size=toy_table.num_nodes)
            used = toy_table.memory[rows, cols].sum()
            comp_used = complement[rows, cols].sum()
            assert (used <= 188) == (comp_used >= threshold - 1e-9)


class TestAssignmentValidation:
    def test_wrong_length(self, toy_table):
        from repro.optimizer import Assignment

        bad = Assignment(
            samplers=np.zeros(2, dtype=np.int8),
            used_memory=0,
            total_time=0,
            budget=100,
        )
        with pytest.raises(AssignmentError):
            bad.validate_against(toy_table)

    def test_memory_bookkeeping_mismatch(self, toy_table):
        from repro.optimizer import Assignment

        bad = Assignment(
            samplers=np.zeros(4, dtype=np.int8),
            used_memory=999.0,
            total_time=16.0,
            budget=1000,
        )
        with pytest.raises(AssignmentError, match="bookkept"):
            bad.validate_against(toy_table)

    def test_budget_violation(self, toy_table):
        from repro.optimizer import Assignment

        samplers = np.full(4, SamplerKind.ALIAS, dtype=np.int8)
        memory = toy_table.assignment_memory(samplers)
        bad = Assignment(
            samplers=samplers,
            used_memory=memory,
            total_time=toy_table.assignment_time(samplers),
            budget=10.0,
        )
        with pytest.raises(AssignmentError, match="over budget"):
            bad.validate_against(toy_table)


class TestSchedule:
    def test_stable_per_node_order(self, toy_table):
        _, steps = build_schedule(toy_table)
        seen_second: set[int] = set()
        for step in steps:
            if step.from_col == SamplerKind.REJECTION:
                seen_second.add(step.node)
            if step.from_col == SamplerKind.NAIVE:
                # N→R must come before the node's R→A in the sorted list.
                assert step.node not in seen_second

    def test_gradients_ascending(self, medium_table):
        _, steps = build_schedule(medium_table)
        grads = [s.gradient for s in steps]
        assert grads == sorted(grads)
