"""Unit tests for the cost model (paper Table 1)."""

import numpy as np
import pytest

from repro import CostParams, SamplerKind, build_cost_table, compute_bounding_constants
from repro.bounding import BoundingConstants
from repro.cost import (
    alias_memory,
    alias_time,
    naive_memory,
    naive_time,
    rejection_memory,
    rejection_time,
    sampler_memory,
    sampler_time,
)
from repro.cost.table import CostTable
from repro.exceptions import CostModelError


FIGURE5_PARAMS = CostParams(float_bytes=4, int_bytes=4, fixed_check_cost=1.0)


class TestCostParams:
    def test_defaults(self):
        params = CostParams()
        assert params.float_bytes == 4
        assert params.int_bytes == 4
        assert params.neighbor_checker == "binary"

    def test_binary_check_cost(self):
        params = CostParams()
        assert params.check_cost(8) == pytest.approx(3.0)
        assert params.check_cost(1) == 1.0

    def test_hash_check_cost(self):
        params = CostParams(neighbor_checker="hash")
        assert params.check_cost(1024) == 1.0

    def test_fixed_check_cost(self):
        assert FIGURE5_PARAMS.check_cost(100) == 1.0

    def test_vectorised_check_costs(self):
        params = CostParams()
        costs = params.check_costs(np.array([1, 2, 8, 0]))
        assert list(costs) == [1.0, 1.0, 3.0, 1.0]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"float_bytes": 0},
            {"int_bytes": -1},
            {"time_unit": 0},
            {"neighbor_checker": "quantum"},
            {"fixed_check_cost": 0.0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(CostModelError):
            CostParams(**kwargs)


class TestFormulas:
    """The Figure 5 cost table numbers, cell by cell."""

    def test_naive_memory(self):
        # b_f * d_max / |V| = 4 * 3 / 4 = 3.
        assert naive_memory(FIGURE5_PARAMS, 3, 4) == pytest.approx(3.0)

    def test_naive_time(self):
        # d (c + 1) K: degree 3 → 6; degree 1 → 2; degree 2 → 4.
        assert naive_time(FIGURE5_PARAMS, 3) == pytest.approx(6.0)
        assert naive_time(FIGURE5_PARAMS, 1) == pytest.approx(2.0)
        assert naive_time(FIGURE5_PARAMS, 2) == pytest.approx(4.0)

    def test_rejection_memory(self):
        # (2 b_f + b_i) d: degree 3 → 36; degree 1 → 12; degree 2 → 24.
        assert rejection_memory(FIGURE5_PARAMS, 3) == 36
        assert rejection_memory(FIGURE5_PARAMS, 1) == 12
        assert rejection_memory(FIGURE5_PARAMS, 2) == 24

    def test_rejection_time(self):
        assert rejection_time(FIGURE5_PARAMS, 3, 2.41) == pytest.approx(2.41)
        assert rejection_time(FIGURE5_PARAMS, 2, 1.6) == pytest.approx(1.6)

    def test_rejection_time_invalid_constant(self):
        with pytest.raises(CostModelError):
            rejection_time(FIGURE5_PARAMS, 3, 0.5)

    def test_alias_memory(self):
        # (b_f + b_i)(d² + d): degree 3 → 96; degree 1 → 16; degree 2 → 48.
        assert alias_memory(FIGURE5_PARAMS, 3) == 96
        assert alias_memory(FIGURE5_PARAMS, 1) == 16
        assert alias_memory(FIGURE5_PARAMS, 2) == 48

    def test_alias_time(self):
        assert alias_time(FIGURE5_PARAMS) == 1.0

    def test_naive_memory_requires_nodes(self):
        with pytest.raises(CostModelError):
            naive_memory(FIGURE5_PARAMS, 3, 0)

    def test_dispatch_helpers(self):
        mem = sampler_memory(
            SamplerKind.REJECTION, FIGURE5_PARAMS, 3, max_degree=3, num_nodes=4
        )
        assert mem == 36
        t = sampler_time(SamplerKind.REJECTION, FIGURE5_PARAMS, 3, bounding_constant=2.0)
        assert t == pytest.approx(2.0)
        assert sampler_time(SamplerKind.ALIAS, FIGURE5_PARAMS, 3) == 1.0
        assert sampler_memory(
            SamplerKind.NAIVE, FIGURE5_PARAMS, 3, max_degree=3, num_nodes=4
        ) == pytest.approx(3.0)


class TestSamplerKind:
    def test_ordering(self):
        assert SamplerKind.NAIVE < SamplerKind.REJECTION < SamplerKind.ALIAS

    def test_short_codes(self):
        assert SamplerKind.NAIVE.short == "N"
        assert SamplerKind.REJECTION.short == "R"
        assert SamplerKind.ALIAS.short == "A"

    def test_from_name(self):
        assert SamplerKind.from_name("alias") is SamplerKind.ALIAS
        assert SamplerKind.from_name("NAIVE") is SamplerKind.NAIVE
        with pytest.raises(CostModelError):
            SamplerKind.from_name("bogus")


class TestCostTable:
    def test_figure5_table(self, toy_graph, nv_model):
        """The full Figure 5 cost-model table."""
        constants = compute_bounding_constants(toy_graph, nv_model)
        table = build_cost_table(toy_graph, constants, FIGURE5_PARAMS)
        # Memory columns.
        assert np.allclose(table.memory[:, SamplerKind.NAIVE], 3.0)
        assert list(table.memory[:, SamplerKind.REJECTION]) == [36, 12, 24, 24]
        assert list(table.memory[:, SamplerKind.ALIAS]) == [96, 16, 48, 48]
        # Time columns.
        assert list(table.time[:, SamplerKind.NAIVE]) == [6, 2, 4, 4]
        assert table.time[0, SamplerKind.REJECTION] == pytest.approx(2.41, abs=0.005)
        assert table.time[1, SamplerKind.REJECTION] == pytest.approx(1.0)
        assert table.time[2, SamplerKind.REJECTION] == pytest.approx(1.6)
        assert np.allclose(table.time[:, SamplerKind.ALIAS], 1.0)

    def test_min_max_memory(self, toy_graph, nv_model):
        constants = compute_bounding_constants(toy_graph, nv_model)
        table = build_cost_table(toy_graph, constants, FIGURE5_PARAMS)
        assert table.min_memory() == pytest.approx(12.0)  # all naive
        assert table.max_memory() == pytest.approx(96 + 16 + 48 + 48)

    def test_assignment_costs(self, toy_graph, nv_model):
        constants = compute_bounding_constants(toy_graph, nv_model)
        table = build_cost_table(toy_graph, constants, FIGURE5_PARAMS)
        assignment = np.array([1, 1, 2, 2], dtype=np.int8)  # R R A A
        assert table.assignment_memory(assignment) == pytest.approx(36 + 12 + 48 + 48)
        expected_time = 2.41 + 1.0 + 1.0 + 1.0
        assert table.assignment_time(assignment) == pytest.approx(expected_time, abs=0.01)

    def test_isolated_nodes_naive_only(self, nv_model):
        from repro import from_edges
        from repro.bounding import BoundingConstants

        g = from_edges([(0, 1)], num_nodes=3)
        constants = BoundingConstants(values=np.ones(3))
        table = build_cost_table(g, constants, FIGURE5_PARAMS)
        assert not table.available[2, SamplerKind.REJECTION]
        assert not table.available[2, SamplerKind.ALIAS]
        assert table.available[2, SamplerKind.NAIVE]
        assert table.time[2, SamplerKind.NAIVE] == 0.0

    def test_constants_length_mismatch(self, toy_graph):
        with pytest.raises(CostModelError):
            build_cost_table(toy_graph, BoundingConstants(values=np.ones(2)))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(CostModelError):
            CostTable(time=np.ones((2, 3)), memory=np.ones((3, 2)), params=CostParams())

    def test_naive_must_be_available(self):
        available = np.ones((2, 3), dtype=bool)
        available[0, SamplerKind.NAIVE] = False
        with pytest.raises(CostModelError, match="naive"):
            CostTable(
                time=np.ones((2, 3)),
                memory=np.ones((2, 3)),
                params=CostParams(),
                available=available,
            )

    def test_binary_checker_uses_log_degree(self, toy_graph, nv_model):
        constants = compute_bounding_constants(toy_graph, nv_model)
        table = build_cost_table(toy_graph, constants, CostParams())
        # Node 0 has degree 3 → c = log2(3); naive time = 3 (c + 1).
        c = np.log2(3)
        assert table.time[0, SamplerKind.NAIVE] == pytest.approx(3 * (c + 1))
