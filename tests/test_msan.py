"""Tests for the runtime memory-conformance sanitizer (``repro.analysis.msan``).

The dynamic half of the memory-cost contract checker: every
instrumented structure build (alias tables, rejection/alias per-node
sampler state, admitted edge-state cache entries, resident shards) must
report real ``nbytes`` that evaluate *exactly* to the committed
``memory-contracts.json`` terms at the observed dims.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro import Node2VecModel
from repro.analysis.msan import (
    MemRecord,
    build_report,
    check_records,
    expected_bytes,
    msan_enabled,
    msan_trace,
    verify_records,
)
from repro.exceptions import MemoryConformanceError
from repro.framework.memory import MemoryMeter
from repro.framework.node_samplers import (
    AliasNodeSampler,
    NaiveNodeSampler,
    RejectionNodeSampler,
)
from repro.graph import barabasi_albert_graph, load_edge_list
from repro.graph.sharded import ShardResidencyManager, write_sharded_layout
from repro.sampling.alias import AliasTable
from repro.walks import BatchWalkEngine
from repro.walks.cache import EdgeStateCache

REPO_ROOT = Path(__file__).resolve().parents[1]

CONTRACTS = json.loads(
    (REPO_ROOT / "memory-contracts.json").read_text(encoding="utf-8")
)


@pytest.fixture()
def graph():
    return barabasi_albert_graph(30, 3, rng=11)


# ----------------------------------------------------------------------
# the switch
# ----------------------------------------------------------------------
class TestSwitch:
    def test_env_parsing(self, monkeypatch):
        for off in ("", "0", "false", "no", "FALSE", " No "):
            monkeypatch.setenv("REPRO_MSAN", off)
            assert msan_enabled() is False
        for on in ("1", "true", "yes", "anything"):
            monkeypatch.setenv("REPRO_MSAN", on)
            assert msan_enabled() is True
        assert msan_enabled(True) is True
        assert msan_enabled(False) is False

    def test_disabled_traces_nothing(self, monkeypatch):
        monkeypatch.delenv("REPRO_MSAN", raising=False)
        import repro.analysis.msan as msan

        monkeypatch.setattr(msan, "_TRACER", None)
        AliasTable(np.ones(5))
        assert msan.global_tracer() is None

    def test_scoped_tracer_restores_previous(self):
        import repro.analysis.msan as msan

        with msan_trace() as outer:
            with msan_trace() as inner:
                AliasTable(np.ones(4))
            assert msan.global_tracer() is outer
            assert len(inner.records) == 1
            assert outer.records == []

    def test_env_tracer_checks_eagerly(self, monkeypatch):
        # The environment-activated tracer is fatal at the build site:
        # a divergent record raises immediately, a conformant one does
        # not — REPRO_MSAN=1 pytest needs no report step to fail.
        import repro.analysis.msan as msan

        monkeypatch.setenv("REPRO_MSAN", "1")
        monkeypatch.setattr(msan, "_TRACER", None)
        try:
            msan.trace_alloc("alias_table", 160, d=10.0)  # conformant
            with pytest.raises(MemoryConformanceError):
                msan.trace_alloc("alias_table", 161, d=10.0)
            tracer = msan.global_tracer()
            assert tracer is not None and tracer.check
            assert len(tracer.records) == 1  # the divergent event died
        finally:
            monkeypatch.setattr(msan, "_TRACER", None)


# ----------------------------------------------------------------------
# per-structure conformance against the committed contracts
# ----------------------------------------------------------------------
class TestStructureConformance:
    def test_alias_table_bytes_match_contract(self):
        with msan_trace() as tracer:
            AliasTable(np.ones(13))
        (record,) = tracer.records
        assert record.structure == "alias_table"
        assert record.nbytes == 13 * 8 + 13 * 8
        assert verify_records(tracer.records, CONTRACTS) == []

    def test_rejection_exact_factors_match_contract(self, graph):
        model = Node2VecModel(0.5, 2.0)
        node = 0
        degree = graph.degree(node)
        with msan_trace() as tracer:
            RejectionNodeSampler(
                graph, model, node, factors=np.ones(degree)
            )
        records = [
            r for r in tracer.records if r.structure == "rejection_state"
        ]
        (record,) = records
        assert record.variant is None
        assert record.nbytes == expected_bytes(record, CONTRACTS)
        assert verify_records(tracer.records, CONTRACTS) == []

    def test_rejection_bounded_variant_matches_contract(self, graph):
        # node2vec has a closed-form max_ratio_bound: the factors array
        # is never materialised and the bounded variant terms apply.
        model = Node2VecModel(0.5, 2.0)
        with msan_trace() as tracer:
            RejectionNodeSampler(graph, model, 1)
        records = [
            r for r in tracer.records if r.structure == "rejection_state"
        ]
        (record,) = records
        assert record.variant == "bounded"
        degree = graph.degree(1)
        assert record.nbytes == 16 * degree  # proposal tables only
        assert verify_records(tracer.records, CONTRACTS) == []

    def test_alias_state_matches_contract(self, graph):
        model = Node2VecModel(0.5, 2.0)
        with msan_trace() as tracer:
            AliasNodeSampler(graph, model, 2)
        records = [
            r for r in tracer.records if r.structure == "alias_state"
        ]
        (record,) = records
        degree = graph.degree(2)
        assert dict(record.dims) == {"d": float(degree)}
        assert verify_records(tracer.records, CONTRACTS) == []

    def test_naive_sampler_traces_nothing(self, graph):
        model = Node2VecModel(0.5, 2.0)
        with msan_trace() as tracer:
            NaiveNodeSampler(graph, model, 3)
        assert tracer.records == []

    def test_cache_entries_match_contract(self):
        cache = EdgeStateCache(10_000)
        with msan_trace() as tracer:
            cache.put((0, 1), np.ones(7, dtype=np.float64))
            cache.put((1, 2), np.ones(3, dtype=np.float64))
        assert [r.structure for r in tracer.records] == [
            "edge_state_cache_entry",
            "edge_state_cache_entry",
        ]
        assert [r.nbytes for r in tracer.records] == [56, 24]
        assert verify_records(tracer.records, CONTRACTS) == []

    def test_rejected_cache_entry_is_not_traced(self):
        cache = EdgeStateCache(8)  # smaller than any entry below
        with msan_trace() as tracer:
            assert not cache.put((0, 1), np.ones(7, dtype=np.float64))
        assert tracer.records == []

    def test_resident_shards_match_contract(self, graph, tmp_path):
        layout = write_sharded_layout(graph, tmp_path, num_shards=3)
        manager = ShardResidencyManager(layout)
        with msan_trace() as tracer:
            for index in range(layout.num_shards):
                manager.acquire(index)
        records = [
            r for r in tracer.records if r.structure == "resident_shard"
        ]
        assert len(records) == 3
        assert sum(dict(r.dims)["E_s"] for r in records) == graph.num_edges
        assert verify_records(records, CONTRACTS) == []

    def test_batch_walk_workload_is_fully_conformant(self, graph):
        with msan_trace() as tracer:
            engine = BatchWalkEngine(
                graph, Node2VecModel(0.5, 2.0), cache=5_000.0
            )
            engine.walks(num_walks=4, length=12, rng=3)
        assert tracer.records
        report = build_report(tracer, CONTRACTS)
        assert report.ok, report.divergences
        assert "edge_state_cache_entry" in report.by_structure


# ----------------------------------------------------------------------
# divergence detection and reporting
# ----------------------------------------------------------------------
class TestDivergenceDetection:
    def test_byte_drift_is_reported_exactly(self):
        record = MemRecord(
            structure="alias_table",
            nbytes=10 * 16 + 1,  # one byte over the contract
            dims=(("d", 10.0),),
        )
        divergences = verify_records([record], CONTRACTS)
        assert len(divergences) == 1
        assert "alias_table" in divergences[0]
        assert "161" in divergences[0]
        assert "160" in divergences[0]

    def test_unknown_structure_is_a_divergence(self):
        record = MemRecord(
            structure="mystery_buffer", nbytes=8, dims=(("d", 1.0),)
        )
        assert verify_records([record], CONTRACTS) == [
            "mystery_buffer: no contract terms for structure"
        ]

    def test_unknown_variant_is_a_divergence(self):
        record = MemRecord(
            structure="alias_table",
            nbytes=160,
            dims=(("d", 10.0),),
            variant="compressed",
        )
        (divergence,) = verify_records([record], CONTRACTS)
        assert "variant 'compressed'" in divergence

    def test_check_records_raises_loudly(self):
        record = MemRecord(
            structure="alias_table", nbytes=1, dims=(("d", 10.0),)
        )
        with pytest.raises(MemoryConformanceError) as excinfo:
            check_records([record], CONTRACTS)
        assert "memory sanitizer" in str(excinfo.value)
        check_records([], CONTRACTS)  # no records, nothing to flag

    def test_report_round_trip(self):
        with msan_trace() as tracer:
            AliasTable(np.ones(6))
        report = build_report(tracer, CONTRACTS)
        payload = report.to_dict()
        assert payload["ok"] is True
        assert payload["records"] == 1
        assert payload["by_structure"]["alias_table"]["builds"] == 1
        assert MemRecord.from_dict(
            tracer.records[0].to_dict()
        ) == tracer.records[0]

    def test_derived_contracts_fallback(self):
        # verify_records(None payload) re-derives from source: the live
        # tree must agree with itself.
        with msan_trace() as tracer:
            AliasTable(np.ones(9))
        assert verify_records(tracer.records) == []


# ----------------------------------------------------------------------
# the modeled-side twin: MemoryMeter ledger
# ----------------------------------------------------------------------
class TestMeterLedger:
    def test_ledger_tracks_net_charges_per_label(self):
        meter = MemoryMeter()
        meter.charge(100.0, "alias")
        meter.charge(50.0, "alias")
        meter.charge(30.0, "cache")
        assert meter.ledger == {"alias": 150.0, "cache": 30.0}
        meter.release(150.0, "alias")
        assert meter.ledger == {"cache": 30.0}
        meter.reset()
        assert meter.ledger == {}
        assert meter.peak_bytes == 180.0

    def test_unlabelled_charges_stay_off_ledger(self):
        meter = MemoryMeter()
        meter.charge(64.0)
        assert meter.ledger == {}
        assert meter.used_bytes == 64.0


# ----------------------------------------------------------------------
# msan-report CLI
# ----------------------------------------------------------------------
class TestMsanReportCli:
    @pytest.fixture()
    def edgelist(self, tmp_path, graph):
        path = tmp_path / "graph.txt"
        lines = []
        for node in range(graph.num_nodes):
            for other in graph.neighbors(node):
                if node < other:
                    lines.append(f"{node} {other}")
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        return path

    def test_conformant_run_exits_zero(self, edgelist, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "msan.json"
        code = main(
            [
                "msan-report",
                str(edgelist),
                "--budget",
                "2e3",
                "--cache-budget",
                "4000",
                "--num-shards",
                "2",
                "--output",
                str(out),
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "conform to the memory contracts" in printed
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["ok"] is True
        assert payload["divergences"] == []
        assert "resident_shard" in payload["by_structure"]

    def test_missing_contracts_file_is_an_argument_error(self, edgelist):
        from repro.cli import main

        code = main(
            [
                "msan-report",
                str(edgelist),
                "--budget",
                "2e3",
                "--contracts",
                "/nonexistent/contracts.json",
            ]
        )
        assert code == 2

    def test_divergent_contracts_exit_four(
        self, edgelist, tmp_path, capsys
    ):
        tampered = json.loads(json.dumps(CONTRACTS))
        for structure in tampered["structures"]:
            if structure["name"] == "alias_table":
                structure["terms"] = [
                    {"coeff": 1.0, "monomial": {"d": 1, "b_f": 1}}
                ]
        contracts = tmp_path / "tampered.json"
        contracts.write_text(json.dumps(tampered), encoding="utf-8")
        from repro.cli import main

        code = main(
            [
                "msan-report",
                str(edgelist),
                "--budget",
                "2e3",
                "--contracts",
                str(contracts),
            ]
        )
        assert code == 4
        assert "MSAN DIVERGENCE" in capsys.readouterr().err
