"""Tests for the out-of-core sharded CSR backend and bucketed scheduler.

The load-bearing contract: a corpus generated through the bucketed
bi-block scheduler is **bit-identical** whether the graph lives on disk
as memory-mapped shards or in memory, for every worker count, shard
geometry, residency budget, scheduling policy, and kernel backend — and
the shard I/O counters are themselves worker-count invariant.
"""

import hashlib
import importlib.util
import json

import numpy as np
import pytest

from repro import generate_walks
from repro.analysis.dsan import DsanReport, diff_reports
from repro.distributed.partition import contiguous_partition, partition_boundaries
from repro.exceptions import (
    BudgetError,
    CheckpointError,
    ChunkFailure,
    EmptyGraphError,
    OptimizerError,
    ShardLayoutError,
    WalkError,
)
from repro.framework import MemoryBudget
from repro.graph import (
    CSRGraph,
    ShardResidencyManager,
    ShardedCSRGraph,
    VirtualShardLayout,
    from_edges,
    load_sharded_csr,
    powerlaw_cluster_graph,
    save_sharded_csr,
    write_sharded_layout,
)
from repro.models import Node2VecModel
from repro.resilience import FaultPlan
from repro.walks import BucketedWalkScheduler, scheduled_walks


@pytest.fixture(scope="module")
def graph():
    return powerlaw_cluster_graph(120, 3, 0.4, rng=7)


@pytest.fixture(scope="module")
def model():
    return Node2VecModel(0.5, 2.0)


@pytest.fixture(scope="module")
def layout(graph, tmp_path_factory):
    root = tmp_path_factory.mktemp("shards") / "layout"
    return write_sharded_layout(graph, root, num_shards=5)


def corpus_sha(corpus) -> str:
    payload = "\n".join(" ".join(map(str, w.tolist())) for w in corpus)
    return hashlib.sha256(payload.encode()).hexdigest()


#: Both kernel backends; the numba leg skips where the soft dep is absent.
BACKENDS = [
    "numpy",
    pytest.param(
        "numba",
        marks=pytest.mark.skipif(
            importlib.util.find_spec("numba") is None,
            reason="numba not installed",
        ),
    ),
]

#: One corpus, pinned: graph/model/layout as in the fixtures above,
#: num_walks=2, length=12, rng=11, chunk_size=48.  Every equality test
#: below must land on this exact digest.
PINNED = "aab3efec16d2127e110fa5e17068c458d4065d88fef1601150d2424c13266b85"

WALK_KWARGS = dict(num_walks=2, length=12, rng=11, chunk_size=48)


# ----------------------------------------------------------------------
# layout round-trip
# ----------------------------------------------------------------------
class TestLayoutRoundTrip:
    def test_materialize_equals_source(self, graph, layout):
        rebuilt = layout.materialize()
        np.testing.assert_array_equal(rebuilt.indptr, graph.indptr)
        np.testing.assert_array_equal(rebuilt.indices, graph.indices)
        np.testing.assert_array_equal(rebuilt.weights, graph.weights)

    def test_shard_by_shard_slices_match(self, graph, layout):
        for index in range(layout.num_shards):
            spec = layout.shard_spec(index)
            data = layout.read_shard(index)
            np.testing.assert_array_equal(
                data.indices, graph.indices[spec.edge_offset:spec.edge_offset + spec.num_edges]
            )
            np.testing.assert_array_equal(
                data.indptr,
                graph.indptr[spec.start:spec.stop + 1] - spec.edge_offset,
            )

    def test_io_helpers_round_trip(self, graph, tmp_path):
        saved = save_sharded_csr(graph, tmp_path / "l", num_shards=3)
        assert saved.num_shards == 3
        rebuilt = load_sharded_csr(tmp_path / "l")
        np.testing.assert_array_equal(rebuilt.indices, graph.indices)

    def test_on_disk_bytes_match_storage_bytes(self, graph, layout):
        extra_boundary_entries = 8 * (layout.num_shards - 1)
        assert layout.total_bytes == graph.storage_bytes() + extra_boundary_entries

    def test_existing_layout_needs_overwrite(self, graph, layout):
        with pytest.raises(ShardLayoutError, match="overwrite"):
            write_sharded_layout(graph, layout.path, num_shards=2)
        replaced = write_sharded_layout(
            graph, layout.path, num_shards=5, overwrite=True
        )
        assert replaced.num_shards == 5

    def test_empty_graph_rejected(self, tmp_path):
        empty = CSRGraph(
            np.zeros(1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
        )
        with pytest.raises(EmptyGraphError):
            write_sharded_layout(empty, tmp_path / "e")

    def test_verify_passes_on_intact_layout(self, layout):
        layout.verify()

    def test_layout_signature_is_stable_and_geometry_sensitive(
        self, graph, layout, tmp_path
    ):
        reopened = ShardedCSRGraph.open(layout.path)
        assert reopened.layout_signature == layout.layout_signature
        other = write_sharded_layout(graph, tmp_path / "g3", num_shards=3)
        assert other.layout_signature != layout.layout_signature


# ----------------------------------------------------------------------
# corruption: typed errors, never numpy IndexError
# ----------------------------------------------------------------------
class TestCorruption:
    def _copy_layout(self, graph, tmp_path):
        return write_sharded_layout(graph, tmp_path / "c", num_shards=4)

    @staticmethod
    def _shard_file(layout, shard, role):
        (match,) = [f for f in layout.shard_spec(shard).files if f.role == role]
        return match.path

    def test_truncated_shard_file_fails_open(self, graph, tmp_path):
        layout = self._copy_layout(graph, tmp_path)
        victim = self._shard_file(layout, 1, "indices")
        victim.write_bytes(victim.read_bytes()[:-8])
        with pytest.raises(ShardLayoutError, match="bytes"):
            ShardedCSRGraph.open(layout.path)

    def test_missing_shard_file_fails_open(self, graph, tmp_path):
        layout = self._copy_layout(graph, tmp_path)
        self._shard_file(layout, 2, "weights").unlink()
        with pytest.raises(ShardLayoutError, match="missing"):
            ShardedCSRGraph.open(layout.path)

    def test_bit_flip_fails_hash_verification(self, graph, tmp_path):
        layout = self._copy_layout(graph, tmp_path)
        victim = self._shard_file(layout, 0, "indices")
        raw = bytearray(victim.read_bytes())
        raw[0] ^= 0xFF
        victim.write_bytes(bytes(raw))
        reopened = ShardedCSRGraph.open(layout.path)  # sizes still match
        with pytest.raises(ShardLayoutError, match="hash"):
            reopened.verify()
        manager = ShardResidencyManager(reopened)
        with pytest.raises(ShardLayoutError, match="hash"):
            manager.acquire(0)

    def test_corrupt_manifest_fails_open(self, graph, tmp_path):
        layout = self._copy_layout(graph, tmp_path)
        manifest = layout.path / "manifest.json"
        payload = json.loads(manifest.read_text())
        payload["num_edges"] += 1
        manifest.write_text(json.dumps(payload))
        with pytest.raises(ShardLayoutError):
            ShardedCSRGraph.open(layout.path)


# ----------------------------------------------------------------------
# partitioning
# ----------------------------------------------------------------------
class TestPartitioning:
    def test_contiguous_partition_covers_all_nodes(self):
        degrees = np.array([9, 1, 1, 1, 9, 1, 1, 1, 9, 1], dtype=np.int64)
        part = contiguous_partition(degrees, 3)
        assert len(part) == 10
        assert np.all(np.diff(part) >= 0)  # contiguous
        assert set(part.tolist()) == {0, 1, 2}  # every shard non-empty

    def test_boundaries_round_trip(self):
        part = np.array([0, 0, 1, 1, 1, 2], dtype=np.int64)
        bounds = partition_boundaries(part)
        np.testing.assert_array_equal(bounds, [0, 2, 5, 6])

    def test_interleaved_partition_rejected(self):
        with pytest.raises(OptimizerError):
            partition_boundaries(np.array([0, 1, 0, 1], dtype=np.int64))

    def test_more_shards_than_nodes_rejected(self):
        with pytest.raises(OptimizerError):
            contiguous_partition(np.ones(3, dtype=np.int64), 4)


# ----------------------------------------------------------------------
# residency manager: the budget is an invariant, not a hint
# ----------------------------------------------------------------------
class TestResidency:
    def test_eviction_never_exceeds_budget(self, layout):
        max_shard = max(layout.shard_nbytes(i) for i in range(layout.num_shards))
        budget = max_shard * 2.5
        manager = ShardResidencyManager(layout, budget=budget, max_resident=3)
        rng = np.random.default_rng(0)
        for index in rng.integers(0, layout.num_shards, size=200):
            manager.acquire(int(index))
            assert manager.resident_bytes <= budget
            assert len(manager.resident_shards) <= 3
        counters = manager.counters()
        assert counters["shard_loads"] == counters["shard_evictions"] + len(
            manager.resident_shards
        )
        assert counters["shard_bytes_read"] > 0

    def test_oversized_shard_raises_budget_error(self, layout):
        manager = ShardResidencyManager(layout, budget=16)
        with pytest.raises(BudgetError, match="residency budget"):
            manager.acquire(0)

    def test_memory_budget_object_accepted(self, layout):
        budget = MemoryBudget(layout.total_bytes)
        manager = ShardResidencyManager(layout, budget=budget)
        manager.acquire(0)
        assert manager.resident_bytes == layout.shard_nbytes(0)

    def test_lru_order_and_evict_all(self, layout):
        manager = ShardResidencyManager(layout, max_resident=2)
        manager.acquire(0)
        manager.acquire(1)
        manager.acquire(0)  # refresh 0: 1 is now LRU
        manager.acquire(2)
        assert manager.resident_shards == (0, 2)
        manager.evict_all()
        assert manager.resident_shards == ()
        assert manager.resident_bytes == 0

    def test_invalid_limits_rejected(self, layout):
        with pytest.raises(BudgetError):
            ShardResidencyManager(layout, budget=0)
        with pytest.raises(BudgetError):
            ShardResidencyManager(layout, max_resident=0)


# ----------------------------------------------------------------------
# determinism: the pinned-hash equality matrix
# ----------------------------------------------------------------------
class TestDeterminism:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_sharded_corpus_matches_pin(self, layout, model, workers, backend):
        corpus = generate_walks(
            layout, model, workers=workers, backend=backend,
            max_resident=2, **WALK_KWARGS,
        )
        assert corpus_sha(corpus) == PINNED

    def test_in_memory_graph_matches_pin(self, graph, model):
        corpus = generate_walks(graph, model, **WALK_KWARGS)
        assert corpus_sha(corpus) == PINNED

    @pytest.mark.parametrize("num_shards", [1, 5])
    def test_virtual_geometry_invariance(self, graph, model, num_shards):
        corpus = generate_walks(
            graph, model, num_shards=num_shards, max_resident=1, **WALK_KWARGS
        )
        assert corpus_sha(corpus) == PINNED

    def test_lockstep_policy_same_corpus_more_io(self, layout, model):
        bucketed = generate_walks(
            layout, model, policy="bucketed", max_resident=2, **WALK_KWARGS
        )
        lockstep = generate_walks(
            layout, model, policy="lockstep", max_resident=2, **WALK_KWARGS
        )
        assert corpus_sha(lockstep) == corpus_sha(bucketed) == PINNED
        assert (
            bucketed.metadata["sharded"]["shard_loads"]
            < lockstep.metadata["sharded"]["shard_loads"]
        )

    def test_counters_are_worker_invariant(self, layout, model):
        reference = None
        for workers in (1, 2, 4):
            corpus = generate_walks(
                layout, model, workers=workers, max_resident=2, **WALK_KWARGS
            )
            counters = corpus.metadata["sharded"]
            assert set(counters) == {
                "shard_loads",
                "shard_evictions",
                "shard_bytes_read",
                "crossings",
                "bucket_visits",
            }
            if reference is None:
                reference = counters
            assert counters == reference

    def test_layout_hash_recorded_in_metadata(self, layout, model):
        corpus = generate_walks(layout, model, max_resident=2, **WALK_KWARGS)
        assert corpus.metadata["layout"] == layout.layout_signature
        assert corpus.metadata["engine"] == "bucketed"

    def test_dsan_fingerprints_identical_across_workers(self, layout, model):
        reports = []
        for workers in (1, 2):
            corpus = generate_walks(
                layout, model, workers=workers, max_resident=2,
                dsan=True, **WALK_KWARGS,
            )
            reports.append(DsanReport.from_dict(corpus.metadata["dsan"]))
        assert diff_reports(reports[0], reports[1]) == []

    def test_scheduled_walks_wrapper(self, graph, model):
        corpus = scheduled_walks(
            graph, model, num_walks=2, length=12, rng=11, num_shards=5
        )
        assert len(corpus) == 2 * graph.num_nodes


# ----------------------------------------------------------------------
# checkpoint / resume
# ----------------------------------------------------------------------
class TestCheckpoint:
    def test_interrupted_run_resumes_bit_identically(self, layout, model, tmp_path):
        path = tmp_path / "walks.ckpt"
        plan = FaultPlan(chunks={2}, failures_per_chunk=None)
        with pytest.raises(ChunkFailure):
            generate_walks(
                layout, model, max_resident=2, fault_plan=plan, retry=1,
                checkpoint=path, **WALK_KWARGS,
            )
        assert path.exists()  # chunks before the crash were persisted
        resumed = generate_walks(
            layout, model, max_resident=2, checkpoint=path, **WALK_KWARGS
        )
        assert corpus_sha(resumed) == PINNED

    def test_resume_against_different_layout_refused(
        self, graph, layout, model, tmp_path
    ):
        path = tmp_path / "walks.ckpt"
        generate_walks(layout, model, max_resident=2, checkpoint=path, **WALK_KWARGS)
        other = write_sharded_layout(graph, tmp_path / "other", num_shards=3)
        with pytest.raises(CheckpointError, match="different run"):
            generate_walks(
                other, model, max_resident=2, checkpoint=path, **WALK_KWARGS
            )


# ----------------------------------------------------------------------
# degenerate graphs and bad inputs
# ----------------------------------------------------------------------
class TestEdgeCases:
    def test_degree_zero_sink_truncates_walks(self):
        # 2 -> sink: directed chain where node 3 has no out-edges.
        graph = from_edges(
            np.array([[0, 1], [1, 2], [2, 3]], dtype=np.int64), undirected=False
        )
        corpus = scheduled_walks(
            graph, Node2VecModel(1.0, 1.0),
            starts=[0], num_walks=1, length=10, rng=0, num_shards=2,
        )
        (walk,) = list(corpus)
        assert walk.tolist() == [0, 1, 2, 3]

    def test_single_shard_layout(self, graph, model, tmp_path):
        layout = write_sharded_layout(graph, tmp_path / "one", num_shards=1)
        corpus = generate_walks(layout, model, **WALK_KWARGS)
        assert corpus_sha(corpus) == PINNED

    def test_virtual_layout_surface(self, graph):
        virtual = VirtualShardLayout(graph, num_shards=4)
        assert virtual.num_shards == 4
        assert virtual.materialize() is graph
        assert np.all(virtual.shard_of(np.arange(graph.num_nodes)) < 4)

    def test_unsupported_graph_type_rejected(self, model):
        with pytest.raises(WalkError, match="graph"):
            BucketedWalkScheduler(object(), model)

    def test_unknown_policy_rejected(self, graph, model):
        with pytest.raises(WalkError, match="policy"):
            BucketedWalkScheduler(graph, model, policy="zigzag")


# ----------------------------------------------------------------------
# acceptance: shard files 10x over the resident budget, still exact
# ----------------------------------------------------------------------
class TestOutOfCoreAcceptance:
    def test_ten_times_over_budget_is_bit_identical(self, graph, model, tmp_path):
        layout = write_sharded_layout(graph, tmp_path / "wide", num_shards=16)
        budget = layout.total_bytes / 10
        assert layout.total_bytes >= 10 * budget
        assert max(layout.shard_nbytes(i) for i in range(16)) <= budget
        corpus = generate_walks(layout, model, budget=budget, **WALK_KWARGS)
        assert corpus_sha(corpus) == PINNED
        counters = corpus.metadata["sharded"]
        assert counters["shard_evictions"] > 0
        assert counters["shard_bytes_read"] >= layout.total_bytes
