"""Crawl-mode suite: clocks, rate limiting, circuit breaking, the
resilient client, history-cache degradation, and the crawl estimators.

Everything runs on a :class:`~repro.remote.VirtualClock`, so timing
behaviour is asserted *exactly* — the wait sequence a component performs
is data, not luck.  The two headline contracts:

* the same seed yields byte-identical estimator output under different
  injected timings (latency plans, rate limits);
* the circuit breaker demonstrably opens under an outage, probes
  half-open, and recovers — with walks continuing from cached
  neighbourhoods while it is open.
"""

from dataclasses import dataclass, replace  # noqa: F401 - replace used by supervisor

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    CircuitBreaker,
    CircuitOpenError,
    CircuitState,
    CSRGraph,
    DeadlineExceededError,
    InjectedFaultTransport,
    NeighborhoodCache,
    Node2VecModel,
    PermanentTransportError,
    RateLimitedError,
    RemoteGraph,
    ResilientClient,
    RetryPolicy,
    TokenBucket,
    TransientFaultError,
    TransientTransportError,
    VirtualClock,
    crawl_walks,
    estimate_average_degree,
    estimate_pagerank,
)
from repro.exceptions import WalkError
from repro.framework import MemoryBudget, NeighborProvider
from repro.graph import barabasi_albert_graph
from repro.remote import SystemClock
from repro.resilience import ChunkSupervisor, FaultKind, FaultPlan


@pytest.fixture(scope="module")
def hidden_graph():
    """The ground-truth graph only the transport may see."""
    return barabasi_albert_graph(40, 3, rng=7)


def make_stack(
    graph,
    *,
    plans=(),
    rate_limit=None,
    burst=None,
    outages=(),
    policy=None,
    limiter_rate=None,
    limiter_burst=None,
    breaker=None,
    cache=64 * 1024,
    deadline=None,
):
    """One crawl stack (clock, transport, client, remote graph)."""
    clock = VirtualClock()
    transport = InjectedFaultTransport(
        graph,
        clock=clock,
        plans=plans,
        rate_limit=rate_limit,
        burst=burst,
        outages=outages,
    )
    client = ResilientClient(
        transport,
        policy=policy or RetryPolicy(seed=3, base_delay=0.01),
        limiter=TokenBucket(limiter_rate, burst=limiter_burst, clock=clock),
        breaker=breaker
        if breaker is not None
        else CircuitBreaker(clock=clock),
        deadline=deadline,
        clock=clock,
    )
    return clock, transport, client, RemoteGraph(client, cache=cache)


# ----------------------------------------------------------------------
# clocks
# ----------------------------------------------------------------------
class TestClocks:
    def test_virtual_sleep_advances_and_records(self):
        clock = VirtualClock()
        clock.sleep(1.5)
        clock.sleep(0.0)
        assert clock.monotonic() == 1.5
        assert clock.sleeps == [1.5, 0.0]

    def test_virtual_advance_does_not_record(self):
        clock = VirtualClock(start=10.0)
        clock.advance(2.0)
        assert clock.monotonic() == 12.0 and clock.sleeps == []

    def test_virtual_rejects_negative_and_nan(self):
        clock = VirtualClock()
        with pytest.raises(WalkError):
            clock.sleep(-0.1)
        with pytest.raises(WalkError):
            clock.sleep(float("nan"))
        with pytest.raises(WalkError):
            clock.advance(-1.0)

    def test_system_clock_nonpositive_sleep_is_noop(self):
        clock = SystemClock()
        before = clock.monotonic()
        clock.sleep(0.0)
        clock.sleep(-5.0)
        assert clock.monotonic() - before < 0.5


# ----------------------------------------------------------------------
# token bucket
# ----------------------------------------------------------------------
class TestTokenBucket:
    def test_burst_grants_are_free(self):
        clock = VirtualClock()
        bucket = TokenBucket(10.0, burst=3, clock=clock)
        assert [bucket.acquire() for _ in range(3)] == [0.0, 0.0, 0.0]
        assert clock.sleeps == []

    def test_empty_bucket_waits_exactly_one_refill(self):
        clock = VirtualClock()
        bucket = TokenBucket(4.0, burst=1, clock=clock)
        assert bucket.acquire() == 0.0
        assert bucket.wait_needed() == pytest.approx(0.25)
        assert bucket.acquire() == pytest.approx(0.25)
        assert clock.sleeps == [pytest.approx(0.25)]

    def test_steady_state_waits_equal_inverse_rate(self):
        clock = VirtualClock()
        bucket = TokenBucket(8.0, burst=1, clock=clock)
        waits = [bucket.acquire() for _ in range(5)]
        assert waits[0] == 0.0
        assert waits[1:] == [pytest.approx(0.125)] * 4
        assert bucket.stats()["waits"] == 4
        assert bucket.stats()["total_wait_seconds"] == pytest.approx(0.5)

    def test_idle_time_refills_up_to_burst(self):
        clock = VirtualClock()
        bucket = TokenBucket(2.0, burst=2, clock=clock)
        bucket.acquire()
        bucket.acquire()
        clock.advance(10.0)  # refills to burst cap, not beyond
        assert bucket.acquire() == 0.0
        assert bucket.acquire() == 0.0
        assert bucket.wait_needed() == pytest.approx(0.5)

    def test_disabled_bucket_never_waits(self):
        clock = VirtualClock()
        bucket = TokenBucket(None, clock=clock)
        assert all(bucket.acquire() == 0.0 for _ in range(100))
        assert bucket.wait_needed() == 0.0 and clock.sleeps == []

    def test_rejects_bad_parameters(self):
        with pytest.raises(WalkError):
            TokenBucket(0.0)
        with pytest.raises(WalkError):
            TokenBucket(1.0, burst=0.5)


# ----------------------------------------------------------------------
# circuit breaker
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def make(self, **kw):
        clock = VirtualClock()
        kw.setdefault("failure_threshold", 3)
        kw.setdefault("reset_timeout", 5.0)
        return clock, CircuitBreaker(clock=clock, **kw)

    def test_trips_after_consecutive_failures(self):
        _, breaker = self.make()
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state is CircuitState.CLOSED and breaker.allow()
        breaker.record_failure()
        assert breaker.state is CircuitState.OPEN
        assert not breaker.allow()
        assert breaker.opens == 1 and breaker.rejected == 1

    def test_success_resets_the_failure_streak(self):
        _, breaker = self.make()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state is CircuitState.CLOSED

    def test_retry_in_counts_down_on_the_clock(self):
        clock, breaker = self.make()
        for _ in range(3):
            breaker.record_failure()
        assert breaker.retry_in() == pytest.approx(5.0)
        clock.advance(2.0)
        assert breaker.retry_in() == pytest.approx(3.0)

    def test_half_open_admits_limited_probes(self):
        clock, breaker = self.make(half_open_probes=1)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.state is CircuitState.HALF_OPEN
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # concurrent call refused
        breaker.record_success()
        assert breaker.state is CircuitState.CLOSED
        assert breaker.allow()

    def test_half_open_failure_reopens(self):
        clock, breaker = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state is CircuitState.OPEN
        assert breaker.retry_in() == pytest.approx(5.0)
        assert breaker.opens == 2

    def test_release_probe_frees_the_slot_without_outcome(self):
        clock, breaker = self.make(half_open_probes=1)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow() and not breaker.allow()
        breaker.release_probe()  # e.g. the admitted call got a 429
        assert breaker.allow()  # slot is available again
        assert breaker.state is CircuitState.HALF_OPEN

    def test_transition_log_is_complete(self):
        clock, breaker = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_success()
        assert [(a, b) for a, b, _ in breaker.transitions] == [
            ("closed", "open"),
            ("open", "half_open"),
            ("half_open", "closed"),
        ]

    def test_rejects_bad_parameters(self):
        for kw in (
            {"failure_threshold": 0},
            {"reset_timeout": -1.0},
            {"half_open_probes": 0},
        ):
            with pytest.raises(WalkError):
                CircuitBreaker(**kw)


# ----------------------------------------------------------------------
# transport fault injection
# ----------------------------------------------------------------------
class TestInjectedFaultTransport:
    def test_clean_fetch_matches_hidden_graph(self, hidden_graph):
        clock = VirtualClock()
        transport = InjectedFaultTransport(hidden_graph, clock=clock)
        ids, weights = transport.fetch(0)
        np.testing.assert_array_equal(ids, hidden_graph.neighbors(0))
        np.testing.assert_array_equal(
            weights, hidden_graph.neighbor_weights(0)
        )
        assert transport.calls == 1 and transport.successes == 1

    def test_out_of_range_node_is_permanent(self, hidden_graph):
        transport = InjectedFaultTransport(hidden_graph, clock=VirtualClock())
        with pytest.raises(PermanentTransportError):
            transport.fetch(hidden_graph.num_nodes)

    def test_flaky_node_heals_after_scheduled_failures(self, hidden_graph):
        plan = FaultPlan(kind=FaultKind.FLAKY, chunks={4}, failures_per_chunk=2)
        transport = InjectedFaultTransport(
            hidden_graph, clock=VirtualClock(), plans=[plan]
        )
        for _ in range(2):
            with pytest.raises(TransientTransportError):
                transport.fetch(4)
        ids, _ = transport.fetch(4)  # third per-node attempt succeeds
        assert len(ids) == hidden_graph.degree(4)
        assert transport.fault_counts["flaky"] == 2

    def test_latency_spike_sleeps_the_seeded_amount(self, hidden_graph):
        plan = FaultPlan(
            kind=FaultKind.LATENCY,
            chunks={2},
            failures_per_chunk=1,
            latency_seconds=0.2,
            seed=9,
        )
        clock = VirtualClock()
        transport = InjectedFaultTransport(hidden_graph, clock=clock, plans=[plan])
        transport.fetch(2)
        expected = plan.latency_for(2, 0)
        assert 0.1 <= expected <= 0.3  # [0.5, 1.5] x latency_seconds
        assert clock.sleeps == [pytest.approx(expected)]
        transport.fetch(2)  # healed: no further spike
        assert len(clock.sleeps) == 1

    def test_server_rate_limit_returns_exact_retry_after(self, hidden_graph):
        clock = VirtualClock()
        transport = InjectedFaultTransport(
            hidden_graph, clock=clock, rate_limit=2.0, burst=1
        )
        transport.fetch(0)
        with pytest.raises(RateLimitedError) as info:
            transport.fetch(1)
        assert info.value.retry_after == pytest.approx(0.5)
        clock.advance(0.5)
        transport.fetch(1)  # token refilled
        assert transport.rate_limited == 1

    def test_outage_window_fails_then_clears(self, hidden_graph):
        clock = VirtualClock()
        transport = InjectedFaultTransport(
            hidden_graph, clock=clock, outages=[(1.0, 2.0)]
        )
        transport.fetch(0)  # before the window
        clock.advance(1.5)
        with pytest.raises(TransientTransportError):
            transport.fetch(0)
        clock.advance(1.0)
        transport.fetch(0)  # after the window
        assert transport.outage_failures == 1

    def test_rejects_bad_parameters(self, hidden_graph):
        with pytest.raises(WalkError):
            InjectedFaultTransport(hidden_graph, rate_limit=-1.0)
        with pytest.raises(WalkError):
            InjectedFaultTransport(hidden_graph, outages=[(3.0, 1.0)])


# ----------------------------------------------------------------------
# resilient client
# ----------------------------------------------------------------------
class TestResilientClient:
    def test_transient_fault_retried_with_exact_backoff(self, hidden_graph):
        plan = FaultPlan(kind=FaultKind.FLAKY, chunks={4}, failures_per_chunk=1)
        clock, transport, client, _ = make_stack(hidden_graph, plans=[plan])
        ids, _ = client.fetch(4)
        assert len(ids) == hidden_graph.degree(4)
        assert client.retries == 1 and client.transient_failures == 1
        assert clock.sleeps == [pytest.approx(client.policy.delay(4, 0))]

    def test_permanent_fault_propagates_immediately(self, hidden_graph):
        plan = FaultPlan(
            kind=FaultKind.CRASH, chunks={4}, failures_per_chunk=None
        )
        _, transport, client, _ = make_stack(hidden_graph, plans=[plan])
        with pytest.raises(PermanentTransportError):
            client.fetch(4)
        assert transport.calls == 1  # no retry of a permanent error
        assert client.permanent_failures == 1

    def test_corrupt_response_detected_and_retried(self, hidden_graph):
        plan = FaultPlan(
            kind=FaultKind.CORRUPT, chunks={5}, failures_per_chunk=1
        )
        _, transport, client, _ = make_stack(hidden_graph, plans=[plan])
        ids, _ = client.fetch(5)
        assert int(ids.min()) >= 0  # the corrupt payload never escapes
        assert client.transient_failures == 1 and transport.calls == 2

    def test_retry_exhaustion_raises_last_error(self, hidden_graph):
        plan = FaultPlan(
            kind=FaultKind.FLAKY, chunks={4}, failures_per_chunk=None
        )
        _, transport, client, _ = make_stack(hidden_graph, plans=[plan])
        with pytest.raises(TransientTransportError):
            client.fetch(4)
        assert transport.calls == client.policy.max_attempts

    def test_429_honours_retry_after_and_spares_the_breaker(self, hidden_graph):
        clock, transport, client, _ = make_stack(
            hidden_graph, rate_limit=2.0, burst=1
        )
        client.fetch(0)
        ids, _ = client.fetch(1)  # 429 then success after waiting
        assert len(ids) == hidden_graph.degree(1)
        assert client.rate_limit_retries == 1
        assert client.breaker.consecutive_failures == 0
        expected = max(0.5, client.policy.delay(1, 0))
        assert clock.sleeps == [pytest.approx(expected)]

    def test_client_limiter_avoids_server_429s(self, hidden_graph):
        # Crawl just under the advertised rate: matching it exactly is a
        # float-boundary coin flip, which is precisely why a polite
        # client leaves headroom.
        _, transport, client, _ = make_stack(
            hidden_graph, rate_limit=5.0, burst=1, limiter_rate=4.0, limiter_burst=1
        )
        for node in range(10):
            client.fetch(node)
        assert transport.rate_limited == 0
        assert client.limiter.stats()["waits"] > 0

    def test_deadline_refuses_unaffordable_waits(self, hidden_graph):
        clock, transport, client, _ = make_stack(
            hidden_graph, limiter_rate=1.0
        )
        client.fetch(0)
        with pytest.raises(DeadlineExceededError):
            client.fetch(1, deadline=0.5)  # needs a 1 s token wait
        assert transport.calls == 1  # never reached the wire
        assert client.deadline_failures == 1
        client.fetch(1)  # without a deadline the same call just waits

    def test_open_circuit_fails_fast_without_wire_calls(self, hidden_graph):
        clock = VirtualClock()
        transport = InjectedFaultTransport(
            hidden_graph, clock=clock, outages=[(0.0, 100.0)]
        )
        client = ResilientClient(
            transport,
            policy=RetryPolicy(seed=3, base_delay=0.01),
            breaker=CircuitBreaker(
                failure_threshold=1, reset_timeout=10.0, clock=clock
            ),
            clock=clock,
        )
        with pytest.raises(CircuitOpenError) as info:
            client.fetch(0)
        assert transport.calls == 1  # tripped after the first failure
        # The backoff sleep before the re-check already consumed part of
        # the reset window.
        expected = 10.0 - client.policy.delay(0, 0)
        assert info.value.retry_in == pytest.approx(expected)
        with pytest.raises(CircuitOpenError):
            client.fetch(0)
        assert transport.calls == 1  # fail-fast: the wire was not touched
        assert client.circuit_rejections >= 1


# ----------------------------------------------------------------------
# history cache + remote graph
# ----------------------------------------------------------------------
class TestRemoteGraph:
    def test_interface_matches_csr_graph(self, hidden_graph):
        _, _, _, rgraph = make_stack(hidden_graph)
        for v in range(0, hidden_graph.num_nodes, 7):
            assert rgraph.degree(v) == hidden_graph.degree(v)
            np.testing.assert_array_equal(
                rgraph.neighbors(v), hidden_graph.neighbors(v)
            )
            np.testing.assert_array_equal(
                rgraph.neighbor_weights(v), hidden_graph.neighbor_weights(v)
            )
            assert rgraph.weight_sum(v) == pytest.approx(
                hidden_graph.weight_sum(v)
            )
        u, v = 0, int(hidden_graph.neighbors(0)[0])
        assert rgraph.has_edge(u, v) == hidden_graph.has_edge(u, v)
        assert rgraph.edge_weight(u, v) == pytest.approx(
            hidden_graph.edge_weight(u, v)
        )

    def test_both_graphs_satisfy_neighbor_provider(self, hidden_graph):
        _, _, _, rgraph = make_stack(hidden_graph)
        assert isinstance(hidden_graph, NeighborProvider)
        assert isinstance(rgraph, NeighborProvider)

    def test_cache_hits_do_not_bill_api_calls(self, hidden_graph):
        _, transport, _, rgraph = make_stack(hidden_graph)
        for _ in range(5):
            rgraph.neighbors(3)
        assert transport.calls == 1
        assert rgraph.cache.stats()["hits"] == 4

    def test_out_of_range_node_rejected_locally(self, hidden_graph):
        _, transport, _, rgraph = make_stack(hidden_graph)
        with pytest.raises(WalkError):
            rgraph.neighborhood(-1)
        assert transport.calls == 0

    def test_cache_budget_invariant_asserted_on_every_put(self, hidden_graph):
        """The invariant is *checked on every put*, not sampled."""
        budget = MemoryBudget(total_bytes=2048)
        cache = NeighborhoodCache(budget)
        puts = 0
        _, _, client, _ = make_stack(hidden_graph, cache=cache)
        rgraph = RemoteGraph(client, cache=cache)
        original_put = cache.put

        def asserting_put(key, value):
            nonlocal puts
            ok = original_put(key, value)
            puts += 1
            assert cache.stats()["used_bytes"] <= budget.total_bytes
            return ok

        cache.put = asserting_put
        corpus = crawl_walks(rgraph, num_walks=15, length=8, rng=3)
        assert puts > 0 and len(corpus.walks) == 15
        assert cache.stats()["evictions"] > 0  # the budget actually bound
        assert cache.stats()["peak_bytes"] <= budget.total_bytes


# ----------------------------------------------------------------------
# degradation: stale-while-open
# ----------------------------------------------------------------------
class TestDegradation:
    def test_walks_continue_from_cache_while_circuit_open(self, hidden_graph):
        clock = VirtualClock()
        transport = InjectedFaultTransport(
            hidden_graph, clock=clock, outages=[(1.0, 1000.0)]
        )
        client = ResilientClient(
            transport,
            policy=RetryPolicy(seed=3, max_attempts=2, base_delay=0.001),
            breaker=CircuitBreaker(
                failure_threshold=1, reset_timeout=500.0, clock=clock
            ),
            clock=clock,
        )
        rgraph = RemoteGraph(client, cache=10 * 1024 * 1024)
        # Warm phase: crawl everything while the API is healthy.
        warm = crawl_walks(rgraph, num_walks=30, length=10, rng=5)
        assert warm.metadata["crawl"]["truncated_walks"] == 0
        warmed = rgraph.observed_nodes
        clock.advance(2.0)  # into the outage
        with pytest.raises((CircuitOpenError, TransientTransportError)):
            # force the breaker open on an uncached miss
            while True:
                client.fetch(0)
        assert client.breaker.state is CircuitState.OPEN
        degraded = crawl_walks(rgraph, num_walks=10, length=6, rng=6)
        meta = degraded.metadata["crawl"]
        # Walks kept moving on cached neighbourhoods, visibly stale.
        assert meta["stale_hits"] > 0
        assert rgraph.observed_nodes == warmed  # nothing new fetched
        total_steps = sum(len(w) for w in degraded.walks)
        assert total_steps > 10  # not every walk died at its start node

    def test_cold_cache_open_circuit_truncates_walks(self, hidden_graph):
        clock = VirtualClock()
        transport = InjectedFaultTransport(
            hidden_graph, clock=clock, outages=[(0.0, 1000.0)]
        )
        client = ResilientClient(
            transport,
            policy=RetryPolicy(seed=3, max_attempts=2, base_delay=0.001),
            breaker=CircuitBreaker(
                failure_threshold=1, reset_timeout=500.0, clock=clock
            ),
            clock=clock,
        )
        rgraph = RemoteGraph(client, cache=1024 * 1024)
        corpus = crawl_walks(rgraph, num_walks=8, length=6, rng=5)
        meta = corpus.metadata["crawl"]
        assert meta["truncated_walks"] == 8
        assert all(len(w) == 1 for w in corpus.walks)


# ----------------------------------------------------------------------
# breaker recovery, end to end
# ----------------------------------------------------------------------
class TestBreakerRecovery:
    def test_open_half_open_recover_cycle(self, hidden_graph):
        clock = VirtualClock()
        transport = InjectedFaultTransport(
            hidden_graph, clock=clock, outages=[(0.0, 10.0)]
        )
        client = ResilientClient(
            transport,
            policy=RetryPolicy(seed=3, max_attempts=2, base_delay=0.01),
            breaker=CircuitBreaker(
                failure_threshold=3, reset_timeout=2.0, clock=clock
            ),
            clock=clock,
        )
        rgraph = RemoteGraph(client, cache=1024 * 1024)
        result = estimate_average_degree(rgraph, num_samples=30, rng=5)
        moves = [(a, b) for a, b, _ in client.breaker.transitions]
        # Opened under the outage, probed every reset window, recovered.
        assert moves[0] == ("closed", "open")
        assert ("open", "half_open") in moves
        assert ("half_open", "open") in moves  # failed probes re-tripped
        assert moves[-1] == ("half_open", "closed")
        assert client.breaker.state is CircuitState.CLOSED
        assert client.breaker.opens >= 2
        assert result.circuit_waits > 0
        # Recovery could only have happened after the outage cleared.
        recovery_time = client.breaker.transitions[-1][2]
        assert recovery_time >= 10.0
        assert result.num_samples == 30


# ----------------------------------------------------------------------
# determinism: byte-identical output under different timings
# ----------------------------------------------------------------------
class TestCrawlDeterminism:
    def run_stack(self, graph, latency_seed, latency_scale, limiter_rate):
        clock = VirtualClock()
        plans = [
            FaultPlan(
                kind=FaultKind.LATENCY,
                rate=0.5,
                seed=latency_seed,
                latency_seconds=latency_scale,
            ),
            FaultPlan(
                kind=FaultKind.FLAKY, rate=0.15, seed=99, failures_per_chunk=1
            ),
        ]
        transport = InjectedFaultTransport(
            graph, clock=clock, plans=plans, rate_limit=50.0, burst=5
        )
        client = ResilientClient(
            transport,
            policy=RetryPolicy(seed=3),
            limiter=TokenBucket(limiter_rate, burst=4, clock=clock),
            breaker=CircuitBreaker(clock=clock),
            clock=clock,
        )
        rgraph = RemoteGraph(client, cache=256 * 1024)
        corpus = crawl_walks(
            rgraph,
            num_walks=12,
            length=8,
            model=Node2VecModel(0.5, 2.0),
            rng=11,
        )
        degree = estimate_average_degree(rgraph, num_samples=80, rng=12)
        pagerank = estimate_pagerank(rgraph, 0, num_samples=60, rng=13)
        return clock, corpus, degree, pagerank

    def test_same_seed_same_bytes_under_different_timings(self, hidden_graph):
        c1, corpus1, deg1, pr1 = self.run_stack(hidden_graph, 1, 0.05, 40.0)
        c2, corpus2, deg2, pr2 = self.run_stack(hidden_graph, 2, 0.5, 9.0)
        assert abs(c1.now - c2.now) > 1.0  # genuinely different timings
        for a, b in zip(corpus1.walks, corpus2.walks):
            assert a.tobytes() == b.tobytes()
        assert deg1.average_degree == deg2.average_degree
        assert pr1.scores.tobytes() == pr2.scores.tobytes()

    def test_different_walk_seed_changes_output(self, hidden_graph):
        _, _, _, rgraph = make_stack(hidden_graph)
        a = estimate_pagerank(rgraph, 0, num_samples=50, rng=1)
        b = estimate_pagerank(rgraph, 0, num_samples=50, rng=2)
        assert a.scores.tobytes() != b.scores.tobytes()


# ----------------------------------------------------------------------
# estimator quality
# ----------------------------------------------------------------------
class TestEstimators:
    def test_degree_estimate_converges(self, hidden_graph):
        _, _, _, rgraph = make_stack(hidden_graph, cache=4 * 1024 * 1024)
        result = estimate_average_degree(
            rgraph, num_samples=3000, rng=5, snapshot_every=500
        )
        true_avg = float(
            np.mean([hidden_graph.degree(v) for v in range(hidden_graph.num_nodes)])
        )
        assert result.average_degree == pytest.approx(true_avg, rel=0.15)
        # The accuracy curve is monotone in API calls and ends at the total.
        calls = [c for c, _ in result.curve]
        assert calls == sorted(calls)
        assert calls[-1] == result.api_calls

    def test_pagerank_estimate_matches_power_iteration(self, hidden_graph):
        _, _, _, rgraph = make_stack(hidden_graph, cache=4 * 1024 * 1024)
        query, decay = 0, 0.85
        result = estimate_pagerank(
            rgraph,
            query,
            decay=decay,
            max_length=60,
            num_samples=4000,
            rng=7,
            snapshot_every=1000,
        )
        exact = exact_restart_distribution(hidden_graph, query, decay)
        l1 = float(np.abs(result.scores - exact).sum())
        assert l1 < 0.2
        assert result.scores.sum() == pytest.approx(1.0)
        assert len(result.curve) == 4

    def test_estimator_input_validation(self, hidden_graph):
        _, _, _, rgraph = make_stack(hidden_graph)
        with pytest.raises(WalkError):
            estimate_average_degree(rgraph, num_samples=0)
        with pytest.raises(WalkError):
            estimate_pagerank(rgraph, -1)
        with pytest.raises(WalkError):
            estimate_pagerank(rgraph, 0, decay=1.5)
        with pytest.raises(WalkError):
            crawl_walks(rgraph, num_walks=0, length=5)
        with pytest.raises(WalkError):
            crawl_walks(rgraph, num_walks=2, length=5, starts=np.array([1]))

    def test_crawl_walk_metadata_records_cost(self, hidden_graph):
        _, transport, _, rgraph = make_stack(hidden_graph)
        corpus = crawl_walks(
            rgraph, num_walks=10, length=6, model=Node2VecModel(0.5, 2.0), rng=4
        )
        meta = corpus.metadata["crawl"]
        assert meta["model"] == "node2vec"
        assert meta["api_calls"] == transport.calls
        assert meta["truncated_walks"] == 0
        assert 0.0 <= meta["cache"]["hit_rate"] <= 1.0


def exact_restart_distribution(graph, query, decay):
    """Exact stationary visit distribution of decay-terminated restart
    walks (the quantity the Monte-Carlo estimator approximates)."""
    n = graph.num_nodes
    transition = np.zeros((n, n))
    for u in range(n):
        ids = graph.neighbors(u)
        w = graph.neighbor_weights(u)
        if len(ids) and w.sum() > 0:
            transition[u, ids] = w / w.sum()
    restart = np.zeros(n)
    restart[query] = 1.0
    visits = restart.copy()
    step = restart.copy()
    for _ in range(200):
        step = decay * step @ transition
        visits += step
        if step.sum() < 1e-12:
            break
    return visits / visits.sum()


# ----------------------------------------------------------------------
# satellite: supervisor sleeps until the earliest backoff deadline
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _StubTask:
    index: int
    nodes: tuple
    attempt: int = 0


class _StubHandle:
    """Pool handle whose result is available immediately."""

    def __init__(self, outcome):
        self.outcome = outcome

    def ready(self):
        return True

    def get(self, timeout=None):
        if isinstance(self.outcome, Exception):
            raise self.outcome
        return self.outcome


class _StubPool:
    """Single-threaded stand-in for multiprocessing.Pool."""

    def __init__(self, script):
        #: (index, attempt) -> result or exception
        self.script = script
        self.submissions = []

    def apply_async(self, fn, args):
        task = args[0]
        self.submissions.append((task.index, task.attempt))
        return _StubHandle(self.script[(task.index, task.attempt)])


class TestSupervisorBackoffSleep:
    def test_sleeps_exactly_until_earliest_backoff_deadline(self):
        clock = VirtualClock()
        policy = RetryPolicy(max_attempts=3, base_delay=0.2, seed=5)
        boom = TransientFaultError(0, 0)
        pool = _StubPool(
            {(0, 0): boom, (0, 1): "ok-0", (1, 0): boom, (1, 1): "ok-1"}
        )
        supervisor = ChunkSupervisor(
            lambda task: task,
            policy=policy,
            sleep=clock.sleep,
            monotonic=clock.monotonic,
        )
        run = supervisor.run_pool(
            pool, [_StubTask(0, (0,)), _StubTask(1, (1,))]
        )
        assert run.results == {0: "ok-0", 1: "ok-1"}
        # Both chunks failed instantly, so the gather loop had nothing
        # pending and slept exactly to the earliest backoff deadline —
        # no fixed-interval polling.
        d0, d1 = policy.delay(0, 0), policy.delay(1, 0)
        assert clock.sleeps[0] == pytest.approx(min(d0, d1))
        assert sum(clock.sleeps) == pytest.approx(max(d0, d1))
        assert clock.now == pytest.approx(max(d0, d1))

    def test_promotes_all_due_retries_after_waking(self):
        clock = VirtualClock()
        policy = RetryPolicy(max_attempts=2, base_delay=0.1, seed=5)
        boom = TransientFaultError(0, 0)
        pool = _StubPool({(i, 0): boom for i in range(3)} | {(i, 1): i for i in range(3)})
        supervisor = ChunkSupervisor(
            lambda task: task,
            policy=policy,
            on_exhausted="dead-letter",
            sleep=clock.sleep,
            monotonic=clock.monotonic,
        )
        run = supervisor.run_pool(
            pool, [_StubTask(i, (i,)) for i in range(3)]
        )
        assert run.results == {0: 0, 1: 1, 2: 2}
        assert run.total_retries == 3
        # Waking never overshoots: total virtual time equals the latest
        # backoff deadline, not a multiple of a poll interval.
        latest = max(policy.delay(i, 0) for i in range(3))
        assert clock.now == pytest.approx(latest)


# ----------------------------------------------------------------------
# satellite: RetryPolicy.delay properties
# ----------------------------------------------------------------------
policy_strategy = st.builds(
    RetryPolicy,
    max_attempts=st.integers(min_value=1, max_value=8),
    base_delay=st.floats(min_value=0.0, max_value=5.0),
    backoff=st.floats(min_value=1.0, max_value=4.0),
    max_delay=st.floats(min_value=0.0, max_value=10.0),
    jitter=st.floats(min_value=0.0, max_value=2.0),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)


class TestRetryPolicyProperties:
    SETTINGS = settings(max_examples=60, deadline=None)

    @SETTINGS
    @given(
        policy=policy_strategy,
        chunk=st.integers(min_value=0, max_value=10_000),
        attempt=st.integers(min_value=0, max_value=12),
    )
    def test_max_delay_cap_honoured(self, policy, chunk, attempt):
        assert policy.delay(chunk, attempt) <= policy.max_delay

    @SETTINGS
    @given(
        policy=policy_strategy,
        chunk=st.integers(min_value=0, max_value=10_000),
        attempt=st.integers(min_value=0, max_value=12),
    )
    def test_jitter_factor_within_advertised_band(self, policy, chunk, attempt):
        raw = policy.base_delay * policy.backoff**attempt
        delay = policy.delay(chunk, attempt)
        if raw > 0:
            factor = delay / raw
            # Below the cap the jitter multiplier is in [1, 1 + jitter];
            # at the cap the delay may only be smaller.
            if delay < policy.max_delay:
                assert 1.0 - 1e-9 <= factor <= 1.0 + policy.jitter + 1e-9
            else:
                assert factor <= 1.0 + policy.jitter + 1e-9
        else:
            assert delay == 0.0

    @SETTINGS
    @given(
        policy=policy_strategy,
        chunk=st.integers(min_value=0, max_value=10_000),
        attempt=st.integers(min_value=0, max_value=12),
    )
    def test_deterministic_for_fixed_chunk_and_attempt(
        self, policy, chunk, attempt
    ):
        clone = RetryPolicy(
            max_attempts=policy.max_attempts,
            base_delay=policy.base_delay,
            backoff=policy.backoff,
            max_delay=policy.max_delay,
            jitter=policy.jitter,
            seed=policy.seed,
        )
        assert policy.delay(chunk, attempt) == clone.delay(chunk, attempt)
        assert policy.delay(chunk, attempt) == policy.delay(chunk, attempt)


# ----------------------------------------------------------------------
# satellite: LATENCY / FLAKY fault kinds on the supervisor path
# ----------------------------------------------------------------------
class TestNewFaultKinds:
    def test_flaky_raises_transient_fault(self):
        plan = FaultPlan(kind=FaultKind.FLAKY, chunks={2}, failures_per_chunk=1)
        with pytest.raises(TransientFaultError):
            plan.before_chunk(2, 0, sleep=lambda s: None)
        plan.before_chunk(2, 1, sleep=lambda s: None)  # healed
        plan.before_chunk(3, 0, sleep=lambda s: None)  # never scheduled

    def test_latency_sleeps_seeded_spike_through_injected_sleep(self):
        plan = FaultPlan(
            kind=FaultKind.LATENCY,
            chunks={1},
            failures_per_chunk=1,
            latency_seconds=0.4,
            seed=21,
        )
        slept = []
        plan.before_chunk(1, 0, sleep=slept.append)
        assert slept == [pytest.approx(plan.latency_for(1, 0))]
        assert 0.2 <= slept[0] <= 0.6
        plan.before_chunk(1, 1, sleep=slept.append)  # healed: no sleep
        assert len(slept) == 1

    def test_latency_schedule_is_deterministic(self):
        plan = FaultPlan(kind=FaultKind.LATENCY, rate=1.0, seed=13)
        again = FaultPlan(kind=FaultKind.LATENCY, rate=1.0, seed=13)
        for chunk in range(5):
            for attempt in range(3):
                assert plan.latency_for(chunk, attempt) == again.latency_for(
                    chunk, attempt
                )
        assert plan.latency_for(0, 0) != plan.latency_for(0, 1)

    def test_latency_zero_for_non_latency_kinds(self):
        plan = FaultPlan(kind=FaultKind.CRASH, chunks={0})
        assert plan.latency_for(0, 0) == 0.0

    def test_negative_latency_rejected(self):
        with pytest.raises(WalkError):
            FaultPlan(kind=FaultKind.LATENCY, latency_seconds=-0.1)
