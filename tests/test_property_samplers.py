"""Property-based tests: samplers reproduce arbitrary discrete distributions.

Hypothesis generates the distributions; correctness is checked by
total-variation distance against the exact probabilities (chance of a
false alarm is negligible at the chosen sample sizes and thresholds).
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import AliasTable, CumulativeSampler, NaiveSampler, RejectionSampler
from repro.sampling.utils import (
    empirical_distribution,
    normalize_distribution,
    total_variation_distance,
)

weights_strategy = st.lists(
    st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
    min_size=1,
    max_size=24,
)

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def check_sampler(sampler, weights, seed=0, n=4000, tol=0.12):
    rng = np.random.default_rng(seed)
    samples = sampler.sample_many(n, rng)
    emp = empirical_distribution(samples, len(weights))
    exact = normalize_distribution(np.asarray(weights))
    assert total_variation_distance(emp, exact) < tol


class TestAliasProperty:
    @given(weights=weights_strategy)
    @SETTINGS
    def test_matches_distribution(self, weights):
        check_sampler(AliasTable(np.asarray(weights)), weights)

    @given(weights=weights_strategy)
    @SETTINGS
    def test_tables_reconstruct_exactly(self, weights):
        """(U, K) always encode the target probabilities exactly."""
        table = AliasTable(np.asarray(weights))
        n = table.num_outcomes
        recon = table.probability_table.copy()
        for j in range(n):
            if table.alias_table[j] != j:
                recon[table.alias_table[j]] += 1.0 - table.probability_table[j]
        exact = normalize_distribution(np.asarray(weights))
        assert np.allclose(recon / n, exact, atol=1e-9)


class TestCumulativeProperty:
    @given(weights=weights_strategy)
    @SETTINGS
    def test_matches_distribution(self, weights):
        check_sampler(CumulativeSampler(np.asarray(weights)), weights)


class TestNaiveProperty:
    @given(weights=weights_strategy)
    @SETTINGS
    def test_matches_distribution(self, weights):
        check_sampler(NaiveSampler(np.asarray(weights)), weights)


class TestRejectionProperty:
    @given(
        target=weights_strategy,
        proposal_seed=st.integers(min_value=0, max_value=2**16),
    )
    @SETTINGS
    def test_matches_distribution_any_proposal(self, target, proposal_seed):
        """Rejection is exact for ANY strictly positive proposal."""
        target_arr = np.asarray(target)
        gen = np.random.default_rng(proposal_seed)
        proposal = gen.uniform(0.1, 1.0, size=len(target_arr))
        sampler = RejectionSampler.from_distributions(
            target_arr, proposal, AliasTable(proposal)
        )
        rng = np.random.default_rng(1)
        samples = np.array([sampler.sample(rng) for _ in range(4000)])
        emp = empirical_distribution(samples, len(target_arr))
        exact = normalize_distribution(target_arr)
        assert total_variation_distance(emp, exact) < 0.12

    @given(target=weights_strategy)
    @SETTINGS
    def test_acceptance_ratios_in_unit_interval(self, target):
        target_arr = np.asarray(target)
        proposal = np.ones(len(target_arr))
        sampler = RejectionSampler.from_distributions(
            target_arr, proposal, AliasTable(proposal)
        )
        assert np.all(sampler.acceptance_ratios <= 1.0 + 1e-12)
        assert np.any(np.isclose(sampler.acceptance_ratios.max(), 1.0))
