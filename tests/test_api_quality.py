"""Meta-tests on API quality: exports resolve, modules are documented."""

import importlib
import pkgutil

import pytest

import repro


def _iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


ALL_MODULES = list(_iter_modules())


class TestExports:
    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize(
        "module", ALL_MODULES, ids=lambda m: m.__name__
    )
    def test_module_all_resolves(self, module):
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module.__name__}.{name}"

    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)


class TestDocumentation:
    @pytest.mark.parametrize(
        "module", ALL_MODULES, ids=lambda m: m.__name__
    )
    def test_every_module_has_docstring(self, module):
        assert module.__doc__ and module.__doc__.strip(), module.__name__

    def test_public_classes_documented(self):
        undocumented = []
        for module in ALL_MODULES:
            for name in getattr(module, "__all__", []):
                obj = getattr(module, name)
                if isinstance(obj, type) and not (obj.__doc__ or "").strip():
                    undocumented.append(f"{module.__name__}.{name}")
        assert undocumented == []

    def test_public_functions_documented(self):
        undocumented = []
        for module in ALL_MODULES:
            for name in getattr(module, "__all__", []):
                obj = getattr(module, name)
                if callable(obj) and not isinstance(obj, type):
                    if not (obj.__doc__ or "").strip():
                        undocumented.append(f"{module.__name__}.{name}")
        assert undocumented == []


class TestDoctests:
    def test_graph_builder_doctest(self):
        import doctest

        from repro.graph import builder

        results = doctest.testmod(builder)
        assert results.failed == 0
        assert results.attempted > 0
