"""Tests for the downstream applications: classification and link prediction."""

import numpy as np
import pytest

from repro import MemoryAwareFramework, Node2VecModel, WalkCorpus
from repro.embedding import (
    evaluate_link_prediction,
    roc_auc,
    sample_non_edges,
    split_edges,
    train_classifier,
    train_embeddings,
    train_test_split_indices,
)
from repro.exceptions import ModelError
from repro.graph import sbm_block_labels, stochastic_block_model


@pytest.fixture(scope="module")
def sbm_setup():
    sizes = (20, 20, 20)
    graph = stochastic_block_model(sizes, p_in=0.4, p_out=0.02, rng=0)
    labels = sbm_block_labels(sizes)
    return graph, labels


@pytest.fixture(scope="module")
def sbm_embeddings(sbm_setup):
    graph, _ = sbm_setup
    fw = MemoryAwareFramework(graph, Node2VecModel(1.0, 2.0), budget=1e7, rng=0)
    corpus = WalkCorpus.from_walks(fw.generate_walks(num_walks=12, length=25, rng=1))
    return train_embeddings(corpus, graph.num_nodes, dimensions=24, epochs=3, rng=2)


class TestSBMGenerator:
    def test_shape_and_labels(self, sbm_setup):
        graph, labels = sbm_setup
        assert graph.num_nodes == 60
        assert list(np.bincount(labels)) == [20, 20, 20]

    def test_blocks_denser_inside(self, sbm_setup):
        graph, labels = sbm_setup
        inside = outside = 0
        for u, v, _ in graph.edges():
            if u < v:
                if labels[u] == labels[v]:
                    inside += 1
                else:
                    outside += 1
        assert inside > outside

    def test_invalid_parameters(self):
        with pytest.raises(Exception):
            stochastic_block_model((0, 5), 0.5, 0.1)
        with pytest.raises(Exception):
            stochastic_block_model((5, 5), 1.5, 0.1)


class TestClassifier:
    def test_learns_separable_data(self, rng):
        n = 200
        labels = rng.integers(0, 3, size=n)
        centers = np.array([[4, 0], [0, 4], [-4, -4]], dtype=float)
        features = centers[labels] + rng.standard_normal((n, 2))
        clf = train_classifier(features, labels, rng=0)
        assert clf.accuracy(features, labels) > 0.9

    def test_predict_proba_normalised(self, rng):
        features = rng.standard_normal((50, 4))
        labels = rng.integers(0, 2, size=50)
        clf = train_classifier(features, labels, epochs=10, rng=0)
        probabilities = clf.predict_proba(features)
        assert np.allclose(probabilities.sum(axis=1), 1.0)

    def test_validation(self, rng):
        features = rng.standard_normal((10, 2))
        with pytest.raises(ModelError):
            train_classifier(features, np.zeros(10, dtype=int))  # one class
        with pytest.raises(ModelError):
            train_classifier(features, np.zeros(5, dtype=int))  # length
        with pytest.raises(ModelError):
            train_classifier(features.ravel(), np.zeros(20, dtype=int))  # 1-D

    def test_split_indices(self):
        train, test = train_test_split_indices(100, 0.7, rng=0)
        assert len(train) == 70 and len(test) == 30
        assert set(train).isdisjoint(test)
        with pytest.raises(ModelError):
            train_test_split_indices(10, 1.5)

    def test_node_classification_end_to_end(self, sbm_setup, sbm_embeddings):
        """Embeddings from memory-aware walks linearly separate the SBM."""
        graph, labels = sbm_setup
        vectors = sbm_embeddings.in_vectors
        train, test = train_test_split_indices(graph.num_nodes, 0.6, rng=3)
        clf = train_classifier(vectors[train], labels[train], rng=0)
        accuracy = clf.accuracy(vectors[test], labels[test])
        assert accuracy > 0.8  # chance level is 1/3


class TestRocAuc:
    def test_perfect_separation(self):
        assert roc_auc([3, 4, 5], [0, 1, 2]) == 1.0

    def test_no_separation(self):
        assert roc_auc([1, 2, 3], [1, 2, 3]) == pytest.approx(0.5)

    def test_inverted(self):
        assert roc_auc([0, 1], [5, 6]) == 0.0

    def test_ties_averaged(self):
        assert roc_auc([1, 1], [1, 1]) == pytest.approx(0.5)

    def test_requires_both_classes(self):
        with pytest.raises(ModelError):
            roc_auc([], [1.0])


class TestEdgeSplit:
    def test_residual_keeps_connectivity(self, sbm_setup):
        graph, _ = sbm_setup
        residual, held_out = split_edges(graph, 0.25, rng=0)
        assert residual.num_nodes == graph.num_nodes
        assert len(held_out) > 0
        # Every node keeps at least one neighbour.
        assert int(residual.degrees.min()) >= 1
        # Held-out edges exist in the original but not the residual graph.
        for u, v in held_out[:20]:
            assert graph.has_edge(int(u), int(v))
            assert not residual.has_edge(int(u), int(v))

    def test_non_edges_are_non_edges(self, sbm_setup):
        graph, _ = sbm_setup
        non_edges = sample_non_edges(graph, 50, rng=0)
        for u, v in non_edges:
            assert not graph.has_edge(int(u), int(v))

    def test_invalid_fraction(self, sbm_setup):
        graph, _ = sbm_setup
        with pytest.raises(ModelError):
            split_edges(graph, 0.0)


class TestLinkPrediction:
    def test_end_to_end_beats_chance(self, sbm_setup):
        graph, _ = sbm_setup
        residual, held_out = split_edges(graph, 0.2, rng=1)
        non_edges = sample_non_edges(graph, len(held_out), rng=2)

        fw = MemoryAwareFramework(residual, Node2VecModel(1.0, 2.0), budget=1e7, rng=0)
        corpus = WalkCorpus.from_walks(
            fw.generate_walks(num_walks=12, length=25, rng=3)
        )
        model = train_embeddings(
            corpus, graph.num_nodes, dimensions=24, epochs=3, rng=4
        )
        result = evaluate_link_prediction(
            model.in_vectors, held_out, non_edges, feature="dot"
        )
        assert result.auc > 0.7
        assert result.num_positive == len(held_out)

    def test_all_edge_features_computable(self, sbm_embeddings):
        from repro.embedding import EDGE_FEATURES, edge_features

        pairs = np.array([[0, 1], [2, 3]])
        for feature in EDGE_FEATURES:
            values = edge_features(sbm_embeddings.in_vectors, pairs, feature=feature)
            assert values.shape[0] == 2

    def test_unknown_feature(self, sbm_embeddings):
        from repro.embedding import edge_features

        with pytest.raises(ModelError):
            edge_features(sbm_embeddings.in_vectors, np.array([[0, 1]]), feature="xor")
