"""Tests for the runtime determinism sanitizer (``repro.analysis.dsan``).

The sanitizer's core promises, each pinned here:

* enabling it never changes a sampled value (the recording generator is
  bit-identical to ``default_rng(seed)``);
* chunk fingerprints are invariant under the worker count;
* a deliberately desynchronised worker RNG — walks still perfectly
  well-formed — is detected and reported loudly.
"""

import numpy as np
import pytest

from repro import DeterminismError, Node2VecModel
from repro.analysis.dsan import (
    DSAN_ENV,
    ChunkFingerprint,
    DsanReport,
    RecordingGenerator,
    diff_reports,
    dsan_enabled,
    make_chunk_rng,
    verify_reports,
)
from repro.graph import barabasi_albert_graph
from repro.resilience import FaultKind, FaultPlan
from repro.rng import ensure_rng
from repro.walks import BatchWalkEngine, parallel_walks

WALK_KWARGS = dict(num_walks=2, length=10, chunk_size=8, rng=7)


@pytest.fixture(scope="module")
def engine():
    graph = barabasi_albert_graph(40, 3, rng=5)
    return BatchWalkEngine(graph, Node2VecModel(0.5, 2.0))


# ----------------------------------------------------------------------
# the recording generator
# ----------------------------------------------------------------------
class TestRecordingGenerator:
    def test_stream_is_bit_identical_to_default_rng(self):
        plain = np.random.default_rng(42)
        recording = RecordingGenerator(42)
        assert np.array_equal(
            plain.integers(0, 100, size=32), recording.integers(0, 100, size=32)
        )
        assert np.array_equal(plain.random(16), recording.random(16))
        a, b = np.arange(20), np.arange(20)
        plain.shuffle(a)
        recording.shuffle(b)
        assert np.array_equal(a, b)

    def test_passes_through_ensure_rng(self):
        recording = RecordingGenerator(3)
        assert ensure_rng(recording) is recording

    def test_fingerprint_counts_and_replays(self):
        first = RecordingGenerator(11)
        first.random(5)
        first.integers(0, 9, size=3)
        replay = RecordingGenerator(11)
        replay.random(5)
        replay.integers(0, 9, size=3)
        assert first.fingerprint(0) == replay.fingerprint(0)
        assert first.fingerprint(0).draws == 2

    def test_fingerprint_is_order_sensitive(self):
        ab = RecordingGenerator(11)
        ab.random(5)
        ab.integers(0, 9, size=3)
        # Same draw count, different order -> different digest.
        ba = RecordingGenerator(11)
        ba.integers(0, 9, size=3)
        ba.random(5)
        assert ab.fingerprint(0).draws == ba.fingerprint(0).draws
        assert ab.fingerprint(0).digest != ba.fingerprint(0).digest

    def test_make_chunk_rng_streams_agree(self):
        plain = make_chunk_rng(123, dsan=False)
        recording = make_chunk_rng(123, dsan=True)
        assert not isinstance(plain, RecordingGenerator)
        assert isinstance(recording, RecordingGenerator)
        assert np.array_equal(plain.random(8), recording.random(8))


# ----------------------------------------------------------------------
# the environment/flag switch
# ----------------------------------------------------------------------
class TestDsanEnabled:
    def test_explicit_flag_wins(self, monkeypatch):
        monkeypatch.setenv(DSAN_ENV, "1")
        assert dsan_enabled(False) is False
        monkeypatch.delenv(DSAN_ENV)
        assert dsan_enabled(True) is True

    @pytest.mark.parametrize("value,expected", [
        ("", False), ("0", False), ("false", False), ("no", False),
        ("1", True), ("true", True), ("yes", True),
    ])
    def test_env_parsing(self, monkeypatch, value, expected):
        monkeypatch.setenv(DSAN_ENV, value)
        assert dsan_enabled() is expected


# ----------------------------------------------------------------------
# fingerprints are worker-count invariant
# ----------------------------------------------------------------------
class TestWorkerInvariance:
    def test_identical_fingerprints_across_1_2_4_workers(self, engine):
        reports = {}
        corpora = {}
        for workers in (1, 2, 4):
            corpus = parallel_walks(
                engine, workers=workers, dsan=True, **WALK_KWARGS
            )
            corpora[workers] = corpus
            reports[workers] = DsanReport.from_dict(corpus.metadata["dsan"])
        baseline = reports[1]
        assert len(baseline) > 1  # more than one chunk, or the test is vacuous
        assert baseline.total_draws > 0
        for workers in (2, 4):
            assert diff_reports(baseline, reports[workers]) == []
            for a, b in zip(corpora[1], corpora[workers]):
                assert np.array_equal(a, b)

    def test_sanitizer_does_not_change_walks(self, engine):
        plain = parallel_walks(engine, workers=2, dsan=False, **WALK_KWARGS)
        sanitized = parallel_walks(engine, workers=2, dsan=True, **WALK_KWARGS)
        assert "dsan" not in plain.metadata
        assert "dsan" in sanitized.metadata
        for a, b in zip(plain, sanitized):
            assert np.array_equal(a, b)

    def test_kernel_attribution_present(self, engine):
        corpus = parallel_walks(engine, workers=1, dsan=True, **WALK_KWARGS)
        report = DsanReport.from_dict(corpus.metadata["dsan"])
        kernels = set()
        for fp in report.fingerprints.values():
            kernels.update(dict(fp.kernels))
        assert any(k != "<chunk>" for k in kernels)

    def test_env_variable_activates_sanitizer(self, engine, monkeypatch):
        monkeypatch.setenv(DSAN_ENV, "1")
        corpus = parallel_walks(engine, workers=1, **WALK_KWARGS)
        assert "dsan" in corpus.metadata


# ----------------------------------------------------------------------
# detection: a desynchronised worker RNG is caught
# ----------------------------------------------------------------------
class TestDesyncDetection:
    DESYNC = FaultPlan(
        seed=0,
        kind=FaultKind.DESYNC,
        chunks=frozenset({1}),
        failures_per_chunk=None,
    )

    def test_desync_changes_fingerprint_not_validity(self, engine):
        clean = parallel_walks(engine, workers=1, dsan=True, **WALK_KWARGS)
        desynced = parallel_walks(
            engine, workers=1, dsan=True, fault_plan=self.DESYNC, **WALK_KWARGS
        )
        expected = DsanReport.from_dict(clean.metadata["dsan"])
        actual = DsanReport.from_dict(desynced.metadata["dsan"])
        divergences = diff_reports(expected, actual)
        assert len(divergences) == 1
        assert divergences[0].startswith("chunk 1:")
        # The corpus itself is structurally valid — every walk passed the
        # supervisor's validator — which is exactly why only the
        # sanitizer can catch this bug class.
        assert len(desynced) == len(clean)

    def test_verify_reports_raises_determinism_error(self, engine):
        clean = parallel_walks(engine, workers=1, dsan=True, **WALK_KWARGS)
        expected = DsanReport.from_dict(clean.metadata["dsan"])
        with pytest.raises(DeterminismError, match="chunk 1"):
            parallel_walks(
                engine,
                workers=1,
                dsan=True,
                dsan_expected=expected,
                fault_plan=self.DESYNC,
                **WALK_KWARGS,
            )

    def test_matching_expectation_passes(self, engine):
        clean = parallel_walks(engine, workers=2, dsan=True, **WALK_KWARGS)
        expected = DsanReport.from_dict(clean.metadata["dsan"])
        again = parallel_walks(
            engine, workers=1, dsan=True, dsan_expected=expected, **WALK_KWARGS
        )
        assert "dsan" in again.metadata


# ----------------------------------------------------------------------
# reports: round-trip, diff semantics
# ----------------------------------------------------------------------
class TestReports:
    def _report(self):
        report = DsanReport(meta={"engine": "batch"})
        report.record(ChunkFingerprint(
            index=0, seed=11, draws=4, digest="aa" * 20,
            kernels=(("<chunk>", 1), ("_flat_alias_pick", 3)),
        ))
        report.record(ChunkFingerprint(
            index=1, seed=12, draws=5, digest="bb" * 20,
        ))
        return report

    def test_save_load_round_trip(self, tmp_path):
        report = self._report()
        path = tmp_path / "dsan.json"
        report.save(path)
        loaded = DsanReport.load(path)
        assert loaded.fingerprints == report.fingerprints
        assert loaded.meta == report.meta
        assert loaded.total_draws == 9

    def test_diff_ignores_disjoint_chunks(self):
        a, b = self._report(), DsanReport()
        b.record(a.fingerprints[0])
        # b has no chunk 1 (e.g. replayed from checkpoint): not a divergence.
        assert diff_reports(a, b) == []

    def test_diff_explains_draw_count_mismatch(self):
        a = self._report()
        b = self._report()
        b.record(ChunkFingerprint(
            index=1, seed=12, draws=7, digest="cc" * 20,
        ))
        divergences = diff_reports(a, b)
        assert divergences == ["chunk 1: draw count 5 vs 7"]
        with pytest.raises(DeterminismError, match="draw count 5 vs 7"):
            verify_reports(a, b, detail="unit test")

    def test_digest_only_mismatch_is_reported(self):
        a = self._report()
        b = self._report()
        b.record(ChunkFingerprint(
            index=0, seed=11, draws=4, digest="dd" * 20,
            kernels=(("<chunk>", 1), ("_flat_alias_pick", 3)),
        ))
        (message,) = diff_reports(a, b)
        assert "draw-order digest" in message
