"""Unit tests for edge-list to CSR conversion."""

import numpy as np
import pytest

from repro import GraphBuilder, from_edges
from repro.exceptions import GraphFormatError


class TestFromEdges:
    def test_undirected_doubles_edges(self):
        g = from_edges([(0, 1), (1, 2)])
        assert g.num_edges == 4

    def test_directed_keeps_edges(self):
        g = from_edges([(0, 1), (1, 2)], undirected=False)
        assert g.num_edges == 2

    def test_self_loops_dropped_by_default(self):
        g = from_edges([(0, 0), (0, 1)])
        assert not g.has_edge(0, 0)
        assert g.has_edge(0, 1)

    def test_self_loops_kept_when_allowed(self):
        g = from_edges([(0, 0), (0, 1)], allow_self_loops=True)
        assert g.has_edge(0, 0)

    def test_duplicate_edges_merge_weights(self):
        g = from_edges([(0, 1), (0, 1)], weights=[1.0, 2.5])
        assert g.edge_weight(0, 1) == pytest.approx(3.5)
        assert g.degree(0) == 1

    def test_num_nodes_inferred(self):
        g = from_edges([(0, 5)])
        assert g.num_nodes == 6

    def test_num_nodes_explicit_adds_isolated(self):
        g = from_edges([(0, 1)], num_nodes=10)
        assert g.num_nodes == 10
        assert g.degree(9) == 0

    def test_num_nodes_too_small(self):
        with pytest.raises(GraphFormatError):
            from_edges([(0, 5)], num_nodes=3)

    def test_negative_node_id(self):
        with pytest.raises(GraphFormatError):
            from_edges([(-1, 2)])

    def test_weight_count_mismatch(self):
        with pytest.raises(GraphFormatError):
            from_edges([(0, 1)], weights=[1.0, 2.0])

    def test_negative_weight(self):
        with pytest.raises(GraphFormatError):
            from_edges([(0, 1)], weights=[-1.0])

    def test_bad_shape(self):
        with pytest.raises(GraphFormatError):
            from_edges(np.array([[0, 1, 2]]))

    def test_empty_edge_list(self):
        g = from_edges([], num_nodes=4)
        assert g.num_nodes == 4
        assert g.num_edges == 0

    def test_adjacency_sorted_after_build(self):
        g = from_edges([(0, 3), (0, 1), (0, 2)])
        assert list(g.neighbors(0)) == [1, 2, 3]

    def test_undirected_weights_symmetric(self):
        g = from_edges([(0, 1)], weights=[2.5])
        assert g.edge_weight(0, 1) == 2.5
        assert g.edge_weight(1, 0) == 2.5


class TestGraphBuilder:
    def test_incremental_build(self):
        b = GraphBuilder()
        b.add_edge(0, 1)
        b.add_edge(1, 2, weight=2.0)
        g = b.build()
        assert g.num_nodes == 3
        assert g.edge_weight(1, 2) == 2.0

    def test_add_edges_bulk(self):
        b = GraphBuilder()
        b.add_edges([(0, 1), (1, 2)], weights=[1.0, 3.0])
        g = b.build()
        assert g.edge_weight(1, 2) == 3.0

    def test_add_edges_without_weights(self):
        b = GraphBuilder()
        b.add_edges([(0, 1), (1, 2)])
        assert b.build().is_unit_weight

    def test_directed_builder(self):
        b = GraphBuilder(undirected=False)
        b.add_edge(0, 1)
        g = b.build()
        assert g.has_edge(0, 1) and not g.has_edge(1, 0)

    def test_invalid_edge_rejected_eagerly(self):
        b = GraphBuilder()
        with pytest.raises(GraphFormatError):
            b.add_edge(-1, 0)
        with pytest.raises(GraphFormatError):
            b.add_edge(0, 1, weight=float("inf"))

    def test_empty_builder(self):
        g = GraphBuilder().build(num_nodes=2)
        assert g.num_nodes == 2
        assert g.num_edges == 0
