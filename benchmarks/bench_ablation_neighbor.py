"""Ablation — common-neighbour check strategy (the cost-model ``c``).

The cost model prices binary search at ``c = log2(d)`` and hash sets at
``c = 1`` (more memory).  This ablation measures both the raw check
throughput and the downstream effect on the optimizer's assignment.
"""

import numpy as np
import pytest

from repro import CostParams, build_cost_table, lp_greedy
from repro.graph import make_checker


@pytest.mark.benchmark(group="ablation-neighbor-check")
@pytest.mark.parametrize("strategy", ["binary", "hash", "merge"])
def test_check_throughput(benchmark, livejournal_graph, strategy):
    checker = make_checker(strategy, livejournal_graph)
    rng = np.random.default_rng(0)
    n = livejournal_graph.num_nodes
    queries = rng.integers(0, n, size=(2000, 2))

    def run_checks():
        hits = 0
        for u, z in queries:
            hits += checker.has_edge(int(u), int(z))
        return hits

    hits = benchmark(run_checks)
    assert 0 <= hits <= len(queries)


def test_check_cost_changes_assignment(youtube_graph, youtube_constants):
    """c = 1 (hash) makes rejection cheaper relative to naive, shifting the
    optimizer's break-even points."""
    binary = build_cost_table(
        youtube_graph, youtube_constants, CostParams(neighbor_checker="binary")
    )
    hashed = build_cost_table(
        youtube_graph, youtube_constants, CostParams(neighbor_checker="hash")
    )
    # Identical memory, different time columns.
    assert np.allclose(binary.memory, hashed.memory)
    assert binary.time[:, 0].sum() > hashed.time[:, 0].sum()

    budget = 0.2 * binary.max_memory()
    a_binary = lp_greedy(binary, budget)
    a_hashed = lp_greedy(hashed, budget)
    # Both respect the budget; the assignments themselves may differ.
    assert a_binary.used_memory <= budget
    assert a_hashed.used_memory <= budget
