"""Crawl-mode benchmark: estimator accuracy versus API calls.

Crawl-mode cost is measured in *API calls*, not seconds: a remote
neighbour API bills every request, rate-limits bursts, and fails — so
the relevant trajectory is how fast the estimate converges per call and
how much the neighbourhood history cache bends that curve.  The whole
benchmark runs on a :class:`~repro.remote.VirtualClock`: injected
latency, rate limiting, and outages shape a deterministic virtual
timeline, so the numbers are exactly reproducible run to run.

Scenarios:

1. **accuracy-vs-calls** — average-degree and personalised-PageRank
   estimators against the hidden ground truth, at three history-cache
   budgets (none / tight / ample), each reporting its error curve as a
   function of billable calls;
2. **resilience** — the same degree estimate crawled through latency
   spikes, flaky nodes, and server rate limiting, under two *different*
   injected timing plans — verifying the estimate is byte-identical
   (determinism contract) and counting what the resilience machinery
   absorbed;
3. **breaker-recovery** — an outage window drives the circuit breaker
   through open → half-open → closed while the estimator waits it out;
   the transition log lands in the report.

Usage::

    python benchmarks/bench_crawl.py                   # full run
    python benchmarks/bench_crawl.py --quick --check   # CI smoke gate
    python benchmarks/bench_crawl.py --output BENCH_crawl.json

``--check`` exits non-zero unless the estimators converge, the history
cache reduces API calls, the determinism contract holds byte-for-byte,
and the breaker demonstrably opens and recovers.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import (  # noqa: E402
    CircuitBreaker,
    CircuitState,
    InjectedFaultTransport,
    RemoteGraph,
    ResilientClient,
    RetryPolicy,
    TokenBucket,
    VirtualClock,
    estimate_average_degree,
    estimate_pagerank,
)
from repro.graph import barabasi_albert_graph  # noqa: E402
from repro.resilience import FaultKind, FaultPlan  # noqa: E402


def make_stack(graph, *, cache_bytes, plans=(), rate_limit=None,
               limiter_rate=None, outages=(), breaker=None):
    """One crawl stack over ``graph`` on a fresh virtual clock."""
    clock = VirtualClock()
    transport = InjectedFaultTransport(
        graph,
        clock=clock,
        plans=plans,
        rate_limit=rate_limit,
        outages=outages,
    )
    client = ResilientClient(
        transport,
        policy=RetryPolicy(seed=3),
        limiter=TokenBucket(limiter_rate, clock=clock),
        breaker=breaker
        if breaker is not None
        else CircuitBreaker(clock=clock),
        clock=clock,
    )
    return clock, client, RemoteGraph(client, cache=cache_bytes)


def true_average_degree(graph):
    return float(
        np.mean([graph.degree(v) for v in range(graph.num_nodes)])
    )


def exact_restart_distribution(graph, query, decay=0.85, rounds=200):
    """Exact visit distribution of decay-terminated restart walks."""
    n = graph.num_nodes
    transition = np.zeros((n, n))
    for u in range(n):
        ids = graph.neighbors(u)
        w = graph.neighbor_weights(u)
        if len(ids) and w.sum() > 0:
            transition[u, ids] = w / w.sum()
    step = np.zeros(n)
    step[query] = 1.0
    visits = step.copy()
    for _ in range(rounds):
        step = decay * step @ transition
        visits += step
        if step.sum() < 1e-12:
            break
    return visits / visits.sum()


# ----------------------------------------------------------------------
# scenario 1: accuracy vs API calls, by cache budget
# ----------------------------------------------------------------------
def run_accuracy(graph, *, degree_samples, pr_samples, cache_budgets):
    truth_deg = true_average_degree(graph)
    truth_pr = exact_restart_distribution(graph, query=0)
    out = []
    for label, cache_bytes in cache_budgets:
        _, client, rgraph = make_stack(graph, cache_bytes=cache_bytes)
        deg = estimate_average_degree(
            rgraph,
            num_samples=degree_samples,
            rng=12,
            snapshot_every=max(1, degree_samples // 10),
        )
        pr = estimate_pagerank(
            rgraph,
            0,
            num_samples=pr_samples,
            max_length=40,
            rng=13,
            snapshot_every=max(1, pr_samples // 10),
        )
        degree_curve = [
            {
                "api_calls": calls,
                "estimate": round(value, 4),
                "rel_error": round(abs(value - truth_deg) / truth_deg, 4),
            }
            for calls, value in deg.curve
        ]
        pagerank_curve = [
            {
                "api_calls": calls,
                "l1_error": round(float(np.abs(snap - truth_pr).sum()), 4),
            }
            for calls, snap in pr.curve
        ]
        out.append(
            {
                "cache": label,
                "cache_bytes": cache_bytes,
                "api_calls": rgraph.api_calls,
                "cache_stats": rgraph.cache.stats(),
                "degree": {
                    "true": round(truth_deg, 4),
                    "estimate": round(deg.average_degree, 4),
                    "rel_error": degree_curve[-1]["rel_error"],
                    "curve": degree_curve,
                },
                "pagerank": {
                    "l1_error": pagerank_curve[-1]["l1_error"],
                    "curve": pagerank_curve,
                },
            }
        )
    return out


# ----------------------------------------------------------------------
# scenario 2: resilience + byte-determinism under different timings
# ----------------------------------------------------------------------
def run_resilience(graph, *, degree_samples):
    def one(latency_seed, latency_scale, limiter_rate):
        plans = [
            FaultPlan(
                kind=FaultKind.LATENCY,
                rate=0.4,
                seed=latency_seed,
                latency_seconds=latency_scale,
            ),
            FaultPlan(
                kind=FaultKind.FLAKY, rate=0.1, seed=99, failures_per_chunk=1
            ),
        ]
        clock, client, rgraph = make_stack(
            graph,
            cache_bytes=1 << 20,
            plans=plans,
            rate_limit=50.0,
            limiter_rate=limiter_rate,
        )
        result = estimate_average_degree(
            rgraph, num_samples=degree_samples, rng=12
        )
        return clock, client, result

    clock_a, client_a, run_a = one(1, 0.05, 40.0)
    clock_b, client_b, run_b = one(2, 0.5, 9.0)
    identical = run_a.average_degree == run_b.average_degree
    return {
        "timing_a": {
            "virtual_seconds": round(clock_a.now, 3),
            "retries": client_a.retries,
            "transient_failures": client_a.transient_failures,
            "limiter_waits": client_a.limiter.stats()["waits"],
        },
        "timing_b": {
            "virtual_seconds": round(clock_b.now, 3),
            "retries": client_b.retries,
            "transient_failures": client_b.transient_failures,
            "limiter_waits": client_b.limiter.stats()["waits"],
        },
        "estimate": round(run_a.average_degree, 6),
        "byte_identical_across_timings": bool(identical),
    }


# ----------------------------------------------------------------------
# scenario 3: circuit-breaker recovery through an outage
# ----------------------------------------------------------------------
def run_breaker_recovery(graph, *, degree_samples):
    clock = VirtualClock()
    transport = InjectedFaultTransport(
        graph, clock=clock, outages=[(0.0, 10.0)]
    )
    breaker = CircuitBreaker(
        failure_threshold=3, reset_timeout=2.0, clock=clock
    )
    client = ResilientClient(
        transport,
        policy=RetryPolicy(seed=3, max_attempts=2, base_delay=0.01),
        breaker=breaker,
        clock=clock,
    )
    rgraph = RemoteGraph(client, cache=1 << 20)
    result = estimate_average_degree(rgraph, num_samples=degree_samples, rng=5)
    moves = [(a, b) for a, b, _ in breaker.transitions]
    return {
        "outage_seconds": 10.0,
        "opens": breaker.opens,
        "transitions": [
            {"from": a, "to": b, "at": round(t, 4)}
            for a, b, t in breaker.transitions
        ],
        "recovered": breaker.state is CircuitState.CLOSED,
        "half_open_probe_failures": moves.count(("half_open", "open")),
        "circuit_waits": result.circuit_waits,
        "estimate": round(result.average_degree, 4),
        "virtual_seconds": round(clock.now, 3),
    }


# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small graph and sample counts for CI (seconds)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=(
            "exit non-zero unless estimators converge, the cache cuts "
            "API calls, timing-independence holds, and the breaker "
            "recovers"
        ),
    )
    parser.add_argument(
        "--output",
        default="BENCH_crawl.json",
        help="result JSON path (default: BENCH_crawl.json)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        num_nodes, degree_samples, pr_samples = 150, 800, 800
    else:
        num_nodes, degree_samples, pr_samples = 500, 4000, 4000
    graph = barabasi_albert_graph(num_nodes, 3, rng=7)
    row_bytes = 2 * 8 * max(
        graph.degree(v) for v in range(graph.num_nodes)
    )
    cache_budgets = [
        ("none", 0),
        ("tight", 4 * row_bytes),
        ("ample", 1 << 22),
    ]

    print(f"[bench_crawl] graph: {num_nodes} nodes, accuracy sweep ...", flush=True)
    accuracy = run_accuracy(
        graph,
        degree_samples=degree_samples,
        pr_samples=pr_samples,
        cache_budgets=cache_budgets,
    )
    for entry in accuracy:
        print(
            f"  cache={entry['cache']:>5}: {entry['api_calls']:>7} API calls, "
            f"degree rel_err={entry['degree']['rel_error']:.4f}, "
            f"pagerank l1={entry['pagerank']['l1_error']:.4f}"
        )

    print("[bench_crawl] resilience / determinism ...", flush=True)
    resilience = run_resilience(graph, degree_samples=degree_samples // 2)
    print(
        f"  timings {resilience['timing_a']['virtual_seconds']}s vs "
        f"{resilience['timing_b']['virtual_seconds']}s, byte-identical: "
        f"{resilience['byte_identical_across_timings']}"
    )

    print("[bench_crawl] breaker recovery ...", flush=True)
    recovery = run_breaker_recovery(graph, degree_samples=degree_samples // 4)
    print(
        f"  opens={recovery['opens']}, probe failures="
        f"{recovery['half_open_probe_failures']}, recovered={recovery['recovered']}"
    )

    report = {
        "benchmark": "crawl-accuracy-vs-api-calls",
        "mode": "quick" if args.quick else "full",
        "workload": {
            "graph": f"barabasi-albert power law ({num_nodes} nodes, attach=3)",
            "degree_samples": degree_samples,
            "pagerank_samples": pr_samples,
        },
        "methodology": (
            "estimators crawl a simulated remote API on a virtual clock; "
            "error is measured against the hidden ground truth as a "
            "function of billable API calls, per history-cache budget"
        ),
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "accuracy": accuracy,
        "resilience": resilience,
        "breaker_recovery": recovery,
    }
    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"[bench_crawl] wrote {output}")

    if args.check:
        failures = []
        final = {e["cache"]: e for e in accuracy}
        if final["ample"]["degree"]["rel_error"] > 0.2:
            failures.append(
                f"degree estimate did not converge: rel_error "
                f"{final['ample']['degree']['rel_error']}"
            )
        if final["ample"]["pagerank"]["l1_error"] > 0.3:
            failures.append(
                f"pagerank estimate did not converge: l1 "
                f"{final['ample']['pagerank']['l1_error']}"
            )
        if not final["ample"]["api_calls"] < final["none"]["api_calls"]:
            failures.append(
                f"history cache did not cut API calls: "
                f"{final['ample']['api_calls']} vs {final['none']['api_calls']}"
            )
        if not resilience["byte_identical_across_timings"]:
            failures.append("estimate changed under different injected timings")
        if recovery["opens"] < 1 or not recovery["recovered"]:
            failures.append(
                f"breaker did not open and recover: opens={recovery['opens']}, "
                f"recovered={recovery['recovered']}"
            )
        if failures:
            print("[bench_crawl] CHECK FAILED:", "; ".join(failures))
            return 1
        print(
            "[bench_crawl] check passed: estimators converge, cache cuts "
            "calls, timing-independent, breaker recovers"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
