"""Table 3 bench — T_Cv: exact enumeration vs threshold estimation.

The LP-est variant must touch asymptotically fewer neighbour pairs; on the
dense Flickr stand-in this already shows up in wall-clock.
"""

import pytest

from repro import compute_bounding_constants, estimate_bounding_constants


@pytest.mark.benchmark(group="table3-tcv")
@pytest.mark.parametrize("model_name", ["nv", "auto"])
def test_lp_std(benchmark, flickr_graph, nv_model, auto_model, model_name):
    model = nv_model if model_name == "nv" else auto_model
    constants = benchmark(compute_bounding_constants, flickr_graph, model)
    assert constants.exact


@pytest.mark.benchmark(group="table3-tcv")
@pytest.mark.parametrize("model_name", ["nv", "auto"])
def test_lp_est(benchmark, flickr_graph, nv_model, auto_model, model_name):
    model = nv_model if model_name == "nv" else auto_model
    constants = benchmark(
        estimate_bounding_constants, flickr_graph, model,
        degree_threshold=25, rng=0,
    )
    assert constants.estimated_nodes > 0


def test_estimation_reduces_work(flickr_graph, nv_model):
    exact = compute_bounding_constants(flickr_graph, nv_model)
    estimated = estimate_bounding_constants(
        flickr_graph, nv_model, degree_threshold=25, rng=0
    )
    save = 1 - estimated.meta["ratio_evaluations"] / exact.meta["ratio_evaluations"]
    assert save > 0.5  # > 50% of pair evaluations avoided
    # ... without drifting far from the exact constants.
    drift = abs(exact.values - estimated.values).mean()
    assert drift < 0.3 * exact.mean
