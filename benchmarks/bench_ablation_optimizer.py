"""Ablation — optimizer algorithms: LP greedy vs degree greedy vs exact DP.

Times the assignment search itself (not the walks) and checks solution
quality: LP greedy should land between the exact DP optimum and the
degree-based baselines.
"""

import pytest

from repro import degree_greedy, dp_optimal, lp_greedy
from repro.optimizer.lp_greedy import lmckp_lower_bound


@pytest.fixture(scope="module")
def budget(youtube_table):
    return 0.2 * youtube_table.max_memory()


@pytest.mark.benchmark(group="ablation-optimizer")
def test_lp_greedy_runtime(benchmark, youtube_table, budget):
    assignment = benchmark(lp_greedy, youtube_table, budget)
    assert assignment.used_memory <= budget


@pytest.mark.benchmark(group="ablation-optimizer")
@pytest.mark.parametrize("increasing", [True, False], ids=["deg-inc", "deg-dec"])
def test_degree_greedy_runtime(
    benchmark, youtube_graph, youtube_table, budget, increasing
):
    assignment = benchmark(
        degree_greedy, youtube_table, budget, youtube_graph.degrees,
        increasing=increasing,
    )
    assert assignment.used_memory <= budget


@pytest.mark.benchmark(group="ablation-optimizer")
def test_lmckp_bound_runtime(benchmark, youtube_table, budget):
    bound = benchmark(lmckp_lower_bound, youtube_table, budget)
    assert bound > 0


def test_solution_quality_ordering(youtube_graph, youtube_table, budget):
    """LP greedy within a whisker of the LP lower bound; degree baselines
    behind it (the paper's Figure 7 quality story, deterministic form)."""
    lp = lp_greedy(youtube_table, budget).total_time
    lower = lmckp_lower_bound(youtube_table, budget)
    inc = degree_greedy(
        youtube_table, budget, youtube_graph.degrees, increasing=True
    ).total_time
    dec = degree_greedy(
        youtube_table, budget, youtube_graph.degrees, increasing=False
    ).total_time
    assert lower <= lp + 1e-6
    assert lp <= 1.05 * lower  # greedy is near-optimal in practice
    assert lp <= inc + 1e-6 and lp <= dec + 1e-6


@pytest.mark.benchmark(group="ablation-optimizer-exact")
def test_dp_runtime_small(benchmark, youtube_table):
    """Exact DP on a 40-node slice — the pseudo-polynomial cost the paper
    rejects for big graphs is visible even at this size."""
    from repro.cost import CostTable

    sliced = CostTable(
        time=youtube_table.time[:40],
        memory=youtube_table.memory[:40],
        params=youtube_table.params,
        available=youtube_table.available[:40],
    )
    budget = 0.3 * sliced.max_memory()
    assignment = benchmark.pedantic(
        dp_optimal, args=(sliced, budget), kwargs={"resolution": 8.0},
        rounds=2, iterations=1,
    )
    assert assignment.used_memory <= budget
