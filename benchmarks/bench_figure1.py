"""Figure 1 bench — alias-method memory-explosion ratios.

Times the analytic footprint computation over all six stand-ins and
asserts the figure's shape (every ratio far above 1).
"""

from repro.cost import CostParams
from repro.experiments import figure1


def test_figure1_report(benchmark):
    report = benchmark(figure1.run, scale=0.3, rng=0)
    ratios = report.table("Alias memory explosion").column("ratio")
    assert len(ratios) == 6
    assert all(r > 10 for r in ratios)


def test_figure1_footprint_kernel(benchmark, twitter_graph):
    """The per-graph kernel: alias footprint from the degree sequence."""
    from repro.experiments.common import alias_footprint

    params = CostParams()
    result = benchmark(alias_footprint, twitter_graph.degrees, params)
    assert result > 10 * twitter_graph.memory_bytes()
