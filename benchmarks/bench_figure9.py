"""Figure 9 bench — assignment update cost under dynamic budgets.

Compares a from-scratch LP greedy build against trace-based increase and
decrease updates; the adaptive path must be substantially cheaper.
"""

import pytest

from repro import AdaptiveOptimizer, lp_greedy


@pytest.mark.benchmark(group="figure9-update")
def test_from_scratch(benchmark, youtube_table):
    budget = 0.6 * youtube_table.max_memory()
    assignment = benchmark(lp_greedy, youtube_table, budget)
    assert assignment.used_memory <= budget


@pytest.mark.benchmark(group="figure9-update")
def test_increase_update(benchmark, youtube_table):
    max_mem = youtube_table.max_memory()

    def setup():
        return (AdaptiveOptimizer(youtube_table, 0.5 * max_mem),), {}

    def increase(adaptive):
        return adaptive.set_budget(0.6 * max_mem)

    update = benchmark.pedantic(increase, setup=setup, rounds=10)
    assert update.steps_applied >= 0


@pytest.mark.benchmark(group="figure9-update")
def test_decrease_update(benchmark, youtube_table):
    max_mem = youtube_table.max_memory()

    def setup():
        return (AdaptiveOptimizer(youtube_table, 0.6 * max_mem),), {}

    def decrease(adaptive):
        return adaptive.set_budget(0.5 * max_mem)

    update = benchmark.pedantic(decrease, setup=setup, rounds=10)
    assert update.steps_reverted > 0


def test_update_touches_fewer_steps(youtube_table):
    """Shape: one 10% step touches a fraction of the full trace."""
    max_mem = youtube_table.max_memory()
    adaptive = AdaptiveOptimizer(youtube_table, 0.5 * max_mem)
    full_trace = len(adaptive.trace)
    update = adaptive.set_budget(0.6 * max_mem)
    assert update.steps_touched < full_trace
