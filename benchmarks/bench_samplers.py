"""Micro-benchmarks — the three sampling primitives and per-node samplers.

Ground truth for the cost model's time column: alias O(1), rejection
O(C), naive O(d) per draw.
"""

import numpy as np
import pytest

from repro import AliasTable, CumulativeSampler, NaiveSampler, RejectionSampler
from repro.cost import SamplerKind
from repro.framework import build_node_sampler

N_OUTCOMES = 256
DRAWS = 2000


@pytest.fixture(scope="module")
def target_weights():
    rng = np.random.default_rng(7)
    return rng.uniform(0.1, 1.0, size=N_OUTCOMES)


@pytest.mark.benchmark(group="primitive-draws")
def test_alias_draws(benchmark, target_weights):
    sampler = AliasTable(target_weights)
    rng = np.random.default_rng(0)
    samples = benchmark(sampler.sample_many, DRAWS, rng)
    assert len(samples) == DRAWS


@pytest.mark.benchmark(group="primitive-draws")
def test_cumulative_binary_draws(benchmark, target_weights):
    sampler = CumulativeSampler(target_weights, search="binary")
    rng = np.random.default_rng(0)
    samples = benchmark(sampler.sample_many, DRAWS, rng)
    assert len(samples) == DRAWS


@pytest.mark.benchmark(group="primitive-draws-scalar")
def test_naive_scalar_draws(benchmark, target_weights):
    sampler = NaiveSampler(target_weights)
    rng = np.random.default_rng(0)

    def draw_many():
        return [sampler.sample(rng) for _ in range(200)]

    samples = benchmark(draw_many)
    assert len(samples) == 200


@pytest.mark.benchmark(group="primitive-draws-scalar")
def test_alias_scalar_draws(benchmark, target_weights):
    sampler = AliasTable(target_weights)
    rng = np.random.default_rng(0)

    def draw_many():
        return [sampler.sample(rng) for _ in range(200)]

    samples = benchmark(draw_many)
    assert len(samples) == 200


@pytest.mark.benchmark(group="primitive-draws-scalar")
def test_rejection_scalar_draws(benchmark, target_weights):
    proposal = np.ones(N_OUTCOMES)
    sampler = RejectionSampler.from_distributions(
        target_weights, proposal, AliasTable(proposal)
    )
    rng = np.random.default_rng(0)

    def draw_many():
        return [sampler.sample(rng) for _ in range(200)]

    samples = benchmark(draw_many)
    assert len(samples) == 200


@pytest.mark.benchmark(group="node-sampler-e2e")
@pytest.mark.parametrize("kind", list(SamplerKind), ids=lambda k: k.name.lower())
def test_node_sampler_e2e_draws(benchmark, youtube_graph, nv_model, kind):
    """Per-node e2e sampling at the hub — where the costs diverge most."""
    hub = int(np.argmax(youtube_graph.degrees))
    previous = int(youtube_graph.neighbors(hub)[0])
    sampler = build_node_sampler(kind, youtube_graph, nv_model, hub)
    rng = np.random.default_rng(0)

    def draw_many():
        return [sampler.sample(previous, rng) for _ in range(100)]

    samples = benchmark(draw_many)
    assert all(youtube_graph.has_edge(hub, z) for z in samples)
