"""Figure 7 bench — sampling cost of the greedy algorithms across budgets.

One benchmark per (algorithm, budget-ratio) cell on the LiveJournal
stand-in; the group comparison reproduces the figure's ordering: LP-std
beats the degree-based baselines at the small ratio, everyone converges at
ratio 1.0.
"""

import numpy as np
import pytest

from repro import MemoryAwareFramework
from repro.walks import node2vec_walk_task

RATIOS = (0.1, 1.0)
ALGORITHMS = ("lp", "deg-inc", "deg-dec")


def _build(graph, model, constants, table, algorithm, ratio):
    return MemoryAwareFramework(
        graph,
        model,
        budget=table.max_memory() * ratio,
        optimizer=algorithm,
        bounding_constants=constants,
        rng=0,
    )


@pytest.mark.benchmark(group="figure7-sampling")
@pytest.mark.parametrize("ratio", RATIOS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_sampling_cost(
    benchmark, youtube_graph, nv_model, youtube_constants, youtube_table,
    algorithm, ratio,
):
    fw = _build(
        youtube_graph, nv_model, youtube_constants, youtube_table, algorithm, ratio
    )
    rng = np.random.default_rng(1)

    def task():
        return node2vec_walk_task(
            fw.walk_engine, num_walks=1, length=8, rng=rng
        )

    result = benchmark.pedantic(task, rounds=3, iterations=1)
    assert result.num_walks > 0


@pytest.mark.benchmark(group="figure7-init")
@pytest.mark.parametrize("ratio", RATIOS)
def test_init_cost_grows_with_budget(
    benchmark, youtube_graph, nv_model, youtube_constants, youtube_table, ratio
):
    """T_NS: framework construction (optimizer + sampler build)."""
    fw = benchmark.pedantic(
        _build,
        args=(youtube_graph, nv_model, youtube_constants, youtube_table, "lp", ratio),
        rounds=3,
        iterations=1,
    )
    assert fw.assignment.used_memory <= youtube_table.max_memory() * ratio + 1e-9


def test_figure7_shape_modeled(youtube_graph, nv_model, youtube_constants, youtube_table):
    """Non-timing shape assertion: LP dominates at low budget in modeled cost."""
    modeled = {}
    for algorithm in ALGORITHMS:
        fw = _build(
            youtube_graph, nv_model, youtube_constants, youtube_table, algorithm, 0.1
        )
        modeled[algorithm] = fw.modeled_task_time(1)
    assert modeled["lp"] <= modeled["deg-inc"]
    assert modeled["lp"] <= modeled["deg-dec"]
