"""Table 4 bench — memory footprints and initialisation of the
memory-unaware solutions.

Times the three all-one-sampler builds (naive ~free, rejection moderate,
alias heaviest — the paper's T_init ordering) and asserts the footprint
ordering naive << rejection << alias.
"""

import pytest

from repro import (
    CostParams,
    MemoryAwareFramework,
    SamplerKind,
)
from repro.experiments.common import (
    alias_footprint,
    graph_footprint,
    naive_footprint,
    rejection_footprint,
)


@pytest.mark.benchmark(group="table4-init")
@pytest.mark.parametrize("kind", list(SamplerKind), ids=lambda k: k.name.lower())
def test_memory_unaware_build(
    benchmark, youtube_graph, nv_model, youtube_constants, kind
):
    fw = benchmark.pedantic(
        MemoryAwareFramework.memory_unaware,
        args=(youtube_graph, nv_model, kind),
        kwargs={"bounding_constants": youtube_constants, "rng": 0},
        rounds=3,
        iterations=1,
    )
    assert fw.assignment.algorithm == f"all-{kind.name.lower()}"


def test_footprint_ordering(youtube_graph):
    params = CostParams()
    degrees = youtube_graph.degrees
    naive = naive_footprint(degrees, params)
    rejection = rejection_footprint(degrees, params)
    alias = alias_footprint(degrees, params)
    size = graph_footprint(youtube_graph, params)
    assert naive < 0.1 * size            # naive is negligible
    assert 0.5 * size < rejection < 10 * size  # rejection ~ graph size
    assert alias > 10 * size             # alias explodes
