"""Batched vs scalar walk generation.

The batch engine amortises e2e distribution construction across walkers
sharing an edge state — the reproduction's answer to pure-Python
per-sample overhead.  Groups compare it against the scalar engines.
"""

import numpy as np
import pytest

from repro import MemoryAwareFramework, SamplerKind
from repro.walks.batch import batch_walks


@pytest.mark.benchmark(group="batch-vs-scalar")
def test_batch_engine(benchmark, youtube_graph, nv_model):
    corpus = benchmark.pedantic(
        batch_walks,
        args=(youtube_graph, nv_model),
        kwargs={"num_walks": 4, "length": 10, "rng": 0},
        rounds=3,
        iterations=1,
    )
    assert len(corpus) == 4 * int((youtube_graph.degrees > 0).sum())


@pytest.mark.benchmark(group="batch-vs-scalar")
@pytest.mark.parametrize(
    "kind", [SamplerKind.NAIVE, SamplerKind.ALIAS], ids=["naive", "alias"]
)
def test_scalar_engine(benchmark, youtube_graph, nv_model, youtube_constants, kind):
    fw = MemoryAwareFramework.memory_unaware(
        youtube_graph, nv_model, kind, bounding_constants=youtube_constants, rng=0
    )
    rng = np.random.default_rng(0)
    walks = benchmark.pedantic(
        fw.generate_walks,
        kwargs={"num_walks": 4, "length": 10, "rng": rng},
        rounds=3,
        iterations=1,
    )
    assert len(walks) == 4 * int((youtube_graph.degrees > 0).sum())


def test_batch_beats_scalar_naive(youtube_graph, nv_model, youtube_constants):
    """Deterministic shape assertion independent of the benchmark runner."""
    import time

    started = time.perf_counter()
    batch_walks(youtube_graph, nv_model, num_walks=4, length=10, rng=0)
    batch_seconds = time.perf_counter() - started

    fw = MemoryAwareFramework.memory_unaware(
        youtube_graph, nv_model, SamplerKind.NAIVE,
        bounding_constants=youtube_constants, rng=0,
    )
    started = time.perf_counter()
    fw.generate_walks(num_walks=4, length=10, rng=0)
    naive_seconds = time.perf_counter() - started
    assert batch_seconds < naive_seconds
