"""Shared fixtures for the benchmark suite.

Graphs, models, and bounding constants are session-scoped: the benchmarks
time the operation under study, not fixture setup.  Scales are kept small
so the full suite finishes in minutes; the CLI (``python -m repro.cli``)
runs the same experiments at full stand-in scale.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    AutoregressiveModel,
    CostParams,
    Node2VecModel,
    build_cost_table,
    compute_bounding_constants,
)
from repro.datasets import load_dataset


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(99)


@pytest.fixture(scope="session")
def youtube_graph():
    return load_dataset("youtube", scale=0.15, rng=0)


@pytest.fixture(scope="session")
def livejournal_graph():
    return load_dataset("livejournal", scale=0.12, rng=0)


@pytest.fixture(scope="session")
def twitter_graph():
    return load_dataset("twitter", scale=0.1, rng=0)


@pytest.fixture(scope="session")
def flickr_graph():
    return load_dataset("flickr", scale=0.15, rng=0)


@pytest.fixture(scope="session")
def nv_model():
    return Node2VecModel(a=0.25, b=4.0)


@pytest.fixture(scope="session")
def nv_fast_model():
    return Node2VecModel(a=4.0, b=0.25)


@pytest.fixture(scope="session")
def auto_model():
    return AutoregressiveModel(alpha=0.2)


@pytest.fixture(scope="session")
def youtube_constants(youtube_graph, nv_model):
    return compute_bounding_constants(youtube_graph, nv_model)


@pytest.fixture(scope="session")
def youtube_table(youtube_graph, youtube_constants):
    return build_cost_table(youtube_graph, youtube_constants, CostParams())
