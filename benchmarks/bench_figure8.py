"""Figure 8 bench — MA framework vs rejection on the Twitter stand-in.

Benchmarks the node2vec walk task under the all-rejection baseline and the
MA framework at increasing budget multiples of the graph size; asserts the
figure's shape (modeled cost falls with budget; naive times out; alias
OOMs against the simulated physical memory).
"""

import numpy as np
import pytest

from repro import (
    CostParams,
    MemoryAwareFramework,
    SamplerKind,
    SimulatedOOMError,
    compute_bounding_constants,
)
from repro.experiments.common import alias_footprint, graph_footprint
from repro.walks import node2vec_walk_task


@pytest.fixture(scope="module")
def twitter_setup(twitter_graph, nv_fast_model):
    constants = compute_bounding_constants(twitter_graph, nv_fast_model)
    m_g = graph_footprint(twitter_graph, CostParams())
    return constants, m_g


@pytest.mark.benchmark(group="figure8-sampling")
def test_rejection_baseline(benchmark, twitter_graph, nv_fast_model, twitter_setup):
    constants, _ = twitter_setup
    fw = MemoryAwareFramework.memory_unaware(
        twitter_graph, nv_fast_model, SamplerKind.REJECTION,
        bounding_constants=constants, rng=0,
    )
    rng = np.random.default_rng(2)
    result = benchmark.pedantic(
        lambda: node2vec_walk_task(fw.walk_engine, num_walks=1, length=8, rng=rng),
        rounds=3,
        iterations=1,
    )
    assert result.num_walks == twitter_graph.num_nodes


@pytest.mark.benchmark(group="figure8-sampling")
@pytest.mark.parametrize("multiplier", [2, 6, 10])
def test_ma_framework(
    benchmark, twitter_graph, nv_fast_model, twitter_setup, multiplier
):
    constants, m_g = twitter_setup
    fw = MemoryAwareFramework(
        twitter_graph, nv_fast_model, budget=multiplier * m_g,
        bounding_constants=constants, rng=0,
    )
    rng = np.random.default_rng(2)
    result = benchmark.pedantic(
        lambda: node2vec_walk_task(fw.walk_engine, num_walks=1, length=8, rng=rng),
        rounds=3,
        iterations=1,
    )
    assert result.num_walks == twitter_graph.num_nodes


def test_figure8_gates(twitter_graph, nv_fast_model, twitter_setup):
    """Non-timing gates: naive modeled cost explodes, alias OOMs."""
    constants, m_g = twitter_setup
    physical = 0.5 * alias_footprint(twitter_graph.degrees, CostParams())

    rejection = MemoryAwareFramework.memory_unaware(
        twitter_graph, nv_fast_model, SamplerKind.REJECTION,
        bounding_constants=constants, rng=0,
    )
    naive = MemoryAwareFramework.memory_unaware(
        twitter_graph, nv_fast_model, SamplerKind.NAIVE,
        bounding_constants=constants, rng=0,
    )
    assert naive.modeled_task_time(1) > 10 * rejection.modeled_task_time(1)

    with pytest.raises(SimulatedOOMError):
        MemoryAwareFramework.memory_unaware(
            twitter_graph, nv_fast_model, SamplerKind.ALIAS,
            physical_memory=physical, rng=0,
        )

    # Modeled cost decreases monotonically with the budget multiplier.
    costs = []
    for multiplier in (2, 4, 6, 8, 10):
        fw = MemoryAwareFramework(
            twitter_graph, nv_fast_model, budget=multiplier * m_g,
            bounding_constants=constants, rng=0,
        )
        costs.append(fw.modeled_task_time(1))
    assert costs == sorted(costs, reverse=True)
