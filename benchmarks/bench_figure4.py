"""Figure 4 bench — exact vs estimated bounding-constant distributions.

Groups the exact enumeration against estimation at two thresholds on the
Flickr stand-in (the paper's densest mid-size graph); the histograms must
agree while the estimated variants touch far fewer neighbour pairs.
"""

import numpy as np
import pytest

from repro import compute_bounding_constants, estimate_bounding_constants
from repro.bounding import bounding_histogram


@pytest.mark.benchmark(group="figure4-bounding")
def test_exact_constants(benchmark, flickr_graph, nv_model):
    constants = benchmark(compute_bounding_constants, flickr_graph, nv_model)
    assert constants.exact
    assert constants.mean >= 1.0


@pytest.mark.benchmark(group="figure4-bounding")
@pytest.mark.parametrize(
    "threshold,min_overlap",
    [(25, 0.3), (60, 0.5)],
    ids=["D_th=25", "D_th=60"],
)
def test_estimated_constants(
    benchmark, flickr_graph, nv_model, threshold, min_overlap
):
    constants = benchmark(
        estimate_bounding_constants,
        flickr_graph,
        nv_model,
        degree_threshold=threshold,
        rng=0,
    )
    exact = compute_bounding_constants(flickr_graph, nv_model)
    # Figure 4's claim: the estimated histogram tracks the exact one —
    # well at moderate thresholds, loosely at the very aggressive one
    # (sampling 10 of ~100 neighbours shifts the max-estimate left).
    base = bounding_histogram(exact)
    est = bounding_histogram(constants, edges=base.edges)
    overlap = np.minimum(base.counts, est.counts).sum() / base.total
    assert overlap > min_overlap
    # And estimation touches fewer pairs.
    assert (
        constants.meta["ratio_evaluations"] < exact.meta["ratio_evaluations"]
    )
