"""Ablation — the proposal sampler inside the rejection method.

The rejection node sampler draws proposals from the n2e distribution; the
paper (and this library's default) uses an alias table for those O(1)
draws.  This ablation swaps in a binary-search cumulative table to
quantify what the alias proposal buys: same acceptance behaviour, same
O(d) memory class, slower draws (log d) that multiply with the bounding
constant.
"""

import numpy as np
import pytest

from repro import AliasTable, CumulativeSampler
from repro.sampling import RejectionSampler
from repro.sampling.utils import (
    empirical_distribution,
    normalize_distribution,
    total_variation_distance,
)

N_OUTCOMES = 256
DRAWS = 500


@pytest.fixture(scope="module")
def distributions():
    rng = np.random.default_rng(11)
    target = rng.uniform(0.1, 1.0, size=N_OUTCOMES)
    proposal = rng.uniform(0.5, 1.0, size=N_OUTCOMES)
    return target, proposal


def build_sampler(target, proposal, proposal_kind):
    if proposal_kind == "alias":
        inner = AliasTable(proposal)
    else:
        inner = CumulativeSampler(proposal, search="binary")
    return RejectionSampler.from_distributions(target, proposal, inner)


@pytest.mark.benchmark(group="ablation-rejection-proposal")
@pytest.mark.parametrize("proposal_kind", ["alias", "binary-cdf"])
def test_rejection_draw_throughput(benchmark, distributions, proposal_kind):
    target, proposal = distributions
    sampler = build_sampler(target, proposal, proposal_kind)
    rng = np.random.default_rng(0)

    def draw_many():
        return [sampler.sample(rng) for _ in range(DRAWS)]

    samples = benchmark(draw_many)
    assert len(samples) == DRAWS


def test_both_proposals_sample_correctly(distributions):
    """The proposal structure is a pure speed knob — never a bias knob."""
    target, proposal = distributions
    exact = normalize_distribution(target)
    for kind in ("alias", "binary-cdf"):
        sampler = build_sampler(target, proposal, kind)
        rng = np.random.default_rng(1)
        samples = np.array([sampler.sample(rng) for _ in range(30_000)])
        emp = empirical_distribution(samples, N_OUTCOMES)
        assert total_variation_distance(emp, exact) < 0.08, kind


def test_same_acceptance_behaviour(distributions):
    """Expected tries depend only on (P, Q), not on the proposal sampler."""
    target, proposal = distributions
    tries = {}
    for kind in ("alias", "binary-cdf"):
        sampler = build_sampler(target, proposal, kind)
        rng = np.random.default_rng(2)
        for _ in range(5000):
            sampler.sample(rng)
        tries[kind] = sampler.average_tries
    assert tries["alias"] == pytest.approx(tries["binary-cdf"], rel=0.1)
