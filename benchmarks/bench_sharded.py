"""Out-of-core scheduler benchmark: bucketed bi-block vs lockstep faulting.

Measures walk throughput (walks/second) and shard I/O (shard loads per
thousand steps, bytes read) for the :class:`~repro.walks.BucketedWalkScheduler`
over an on-disk sharded CSR layout, sweeping the resident-shard cap for
both scheduling policies:

1. **bucketed** — walks park in the bucket of the shard holding their
   frontier node; the scheduler drains the most-populated bucket to
   exhaustion before faulting the next shard (GraSorw's bi-block idea:
   I/O scales with bucket drains, not steps);
2. **lockstep** — the naive comparator: one global step per round,
   faulting whatever shards that round's frontier touches.

Both policies produce the **bit-identical** corpus (per-walker RNG
streams make the output order-invariant), so the sweep isolates pure
scheduling efficiency.  An in-memory run through the same scheduler over
a :class:`~repro.graph.VirtualShardLayout` anchors the hash and the
zero-I/O throughput ceiling.

Usage::

    python benchmarks/bench_sharded.py                   # full sweep
    python benchmarks/bench_sharded.py --quick --check   # CI smoke gate
    python benchmarks/bench_sharded.py --output BENCH_sharded.json

``--check`` exits non-zero unless (a) every configuration's corpus hash
equals the in-memory reference, and (b) at every resident-shard cap
below the shard count, bucketed scheduling issues strictly fewer shard
loads than lockstep.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import platform
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import Node2VecModel
from repro.graph import write_sharded_layout
from repro.graph.generators import barabasi_albert_graph
from repro.walks import BucketedWalkScheduler


def corpus_sha(corpus) -> str:
    """Order-sensitive digest of every trail in the corpus."""
    payload = "\n".join(" ".join(map(str, w.tolist())) for w in corpus)
    return hashlib.sha256(payload.encode()).hexdigest()


def run_config(layout, model, *, policy, max_resident, num_walks, length, seed):
    """Benchmark one (policy, residency-cap) cell; returns (row, sha)."""
    engine = BucketedWalkScheduler(
        layout, model, policy=policy, max_resident=max_resident
    )
    started = time.perf_counter()
    corpus = engine.walks(num_walks=num_walks, length=length, rng=seed)
    seconds = time.perf_counter() - started
    counters = engine.counters()
    sharded = counters["sharded"]
    steps = max(1, counters["steps"])
    row = {
        "policy": policy,
        "max_resident": max_resident,
        "walks": len(corpus),
        "seconds": round(seconds, 3),
        "walks_per_sec": round(len(corpus) / seconds, 2) if seconds > 0 else None,
        "steps": int(counters["steps"]),
        "shard_loads": int(sharded["shard_loads"]),
        "loads_per_kstep": round(1000.0 * sharded["shard_loads"] / steps, 3),
        "shard_evictions": int(sharded["shard_evictions"]),
        "shard_bytes_read": int(sharded["shard_bytes_read"]),
        "crossings": int(sharded["crossings"]),
    }
    return row, corpus_sha(corpus)


def run_sweep(*, num_nodes, num_shards, residents, num_walks, length, seed=0):
    """The full benchmark matrix for one graph size."""
    graph = barabasi_albert_graph(num_nodes, 4, rng=seed)
    model = Node2VecModel(0.25, 4.0)  # the paper's node2vec setting

    # In-memory reference: same scheduler, virtual single shard — the
    # hash anchor and the no-I/O throughput ceiling.
    engine = BucketedWalkScheduler(graph, model)
    started = time.perf_counter()
    reference_corpus = engine.walks(num_walks=num_walks, length=length, rng=seed)
    ref_seconds = time.perf_counter() - started
    reference_sha = corpus_sha(reference_corpus)

    with tempfile.TemporaryDirectory(prefix="bench_sharded_") as tmp:
        layout = write_sharded_layout(
            graph, Path(tmp) / "layout", num_shards=num_shards
        )
        rows = []
        hashes = {}
        for max_resident in residents:
            for policy in ("bucketed", "lockstep"):
                row, sha = run_config(
                    layout,
                    model,
                    policy=policy,
                    max_resident=max_resident,
                    num_walks=num_walks,
                    length=length,
                    seed=seed,
                )
                row["identical_to_reference"] = sha == reference_sha
                rows.append(row)
                hashes[(policy, max_resident)] = sha
        total_bytes = int(layout.total_bytes)

    return {
        "num_nodes": int(graph.num_nodes),
        "num_edges": int(graph.num_edges),
        "num_shards": int(num_shards),
        "layout_bytes": total_bytes,
        "num_walks": int(num_walks),
        "length": int(length),
        "reference": {
            "walks_per_sec": (
                round(len(reference_corpus) / ref_seconds, 2)
                if ref_seconds > 0
                else None
            ),
            "sha256": reference_sha,
        },
        "configs": rows,
    }


def check_result(result) -> list[str]:
    """Regression gates; returns human-readable failure strings."""
    failures = []
    for row in result["configs"]:
        if not row["identical_to_reference"]:
            failures.append(
                f"corpus mismatch: policy={row['policy']} "
                f"max_resident={row['max_resident']} diverged from the "
                "in-memory reference"
            )
    by_cell = {
        (row["policy"], row["max_resident"]): row for row in result["configs"]
    }
    for (policy, max_resident), row in by_cell.items():
        if policy != "bucketed" or max_resident >= result["num_shards"]:
            continue
        lockstep = by_cell.get(("lockstep", max_resident))
        if lockstep and row["shard_loads"] >= lockstep["shard_loads"]:
            failures.append(
                f"no I/O advantage at max_resident={max_resident}: bucketed "
                f"{row['shard_loads']} load(s) vs lockstep "
                f"{lockstep['shard_loads']}"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small single-graph sweep for CI (seconds, not minutes)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=(
            "exit non-zero unless every config matches the in-memory "
            "corpus and bucketed beats lockstep on shard loads"
        ),
    )
    parser.add_argument(
        "--output",
        default="BENCH_sharded.json",
        help="result JSON path (default: BENCH_sharded.json)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        sweep = dict(
            num_nodes=1_500, num_shards=8, residents=[1, 2, 4],
            num_walks=1, length=20,
        )
    else:
        sweep = dict(
            num_nodes=10_000, num_shards=16, residents=[1, 2, 4, 8, 16],
            num_walks=2, length=40,
        )

    result = run_sweep(**sweep)
    result["python"] = platform.python_version()
    result["mode"] = "quick" if args.quick else "full"

    print(
        f"graph: {result['num_nodes']:,} nodes, {result['num_edges']:,} "
        f"edges, {result['num_shards']} shards "
        f"({result['layout_bytes']:,} bytes on disk)"
    )
    print(
        f"{'policy':<10} {'resident':>8} {'walks/s':>10} {'loads':>7} "
        f"{'loads/kstep':>12} {'bytes read':>12}"
    )
    for row in result["configs"]:
        print(
            f"{row['policy']:<10} {row['max_resident']:>8} "
            f"{row['walks_per_sec']:>10} {row['shard_loads']:>7} "
            f"{row['loads_per_kstep']:>12} {row['shard_bytes_read']:>12,}"
        )
    print(f"in-memory reference: {result['reference']['walks_per_sec']} walks/s")

    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2)
    print(f"written to {args.output}")

    if args.check:
        failures = check_result(result)
        for failure in failures:
            print(f"CHECK FAILED: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(
            "checks passed: all corpora bit-identical to the in-memory "
            "reference; bucketed < lockstep shard loads at every "
            "constrained residency cap"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
