"""Table 5 bench — end-to-end sampling cost of every method.

Benchmarks the node2vec walk task under naive, rejection, alias,
LP-std(0.1) and LP-std(1.0) on the Youtube stand-in and asserts the
paper's T_s ordering.
"""

import numpy as np
import pytest

from repro import MemoryAwareFramework, SamplerKind
from repro.walks import node2vec_walk_task

METHODS = ("naive", "rejection", "alias", "lp-0.1", "lp-1.0")


def build_method(method, graph, model, constants, table):
    if method in ("naive", "rejection", "alias"):
        return MemoryAwareFramework.memory_unaware(
            graph, model, SamplerKind.from_name(method),
            bounding_constants=constants, rng=0,
        )
    ratio = float(method.split("-")[1])
    return MemoryAwareFramework(
        graph, model, budget=table.max_memory() * ratio,
        bounding_constants=constants, rng=0,
    )


@pytest.mark.benchmark(group="table5-sampling")
@pytest.mark.parametrize("method", METHODS)
def test_sampling_cost(
    benchmark, youtube_graph, nv_model, youtube_constants, youtube_table, method
):
    fw = build_method(method, youtube_graph, nv_model, youtube_constants, youtube_table)
    rng = np.random.default_rng(3)
    result = benchmark.pedantic(
        lambda: node2vec_walk_task(fw.walk_engine, num_walks=1, length=8, rng=rng),
        rounds=3,
        iterations=1,
    )
    assert result.num_walks > 0


def test_table5_modeled_ordering(
    youtube_graph, nv_model, youtube_constants, youtube_table
):
    """The paper's T_s ordering, on modeled cost (deterministic)."""
    modeled = {
        method: build_method(
            method, youtube_graph, nv_model, youtube_constants, youtube_table
        ).modeled_task_time(1)
        for method in METHODS
    }
    assert modeled["alias"] <= modeled["lp-1.0"]
    assert modeled["lp-1.0"] < modeled["lp-0.1"]
    assert modeled["lp-0.1"] < modeled["rejection"]
    assert modeled["rejection"] < modeled["naive"]
