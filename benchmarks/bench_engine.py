"""Walk-engine trajectory benchmark: scalar vs batched-naive vs
assignment-aware batch.

Measures corpus generation throughput (walks/second) on power-law graphs
at several scales, for the three engine configurations the repository has
grown through:

1. **scalar** — the per-sample :class:`~repro.framework.WalkEngine` over
   the cost-optimised assignment (Algorithm 1, one interpreter round-trip
   per step per walk);
2. **batched-naive** — :class:`~repro.walks.BatchWalkEngine` with no
   sampler array: every node on the vectorised on-demand path;
3. **assignment-aware batch** — the same engine over the optimizer's
   sampler assignment plus a hot edge-state cache sized to the budget
   headroom.

Methodology: batch engines run the full workload in frontier chunks; the
scalar engine walks start nodes under a wall-clock budget and its rate is
extrapolated from the walks it completed (flagged ``extrapolated`` in the
output — the per-walk cost is constant, so the extrapolation is safe).

Usage::

    python benchmarks/bench_engine.py                  # full trajectory
    python benchmarks/bench_engine.py --smoke --check  # CI smoke gate
    python benchmarks/bench_engine.py --output BENCH_walks.json

``--check`` exits non-zero if the assignment-aware batch engine is not
faster than the scalar engine at every scale.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro import (
    CostParams,
    MemoryAwareFramework,
    Node2VecModel,
    build_cost_table,
    compute_bounding_constants,
)
from repro.cost import SamplerKind
from repro.graph.generators import barabasi_albert_graph
from repro.walks import BatchWalkEngine

#: starts handed to one walk_chunk call; bounds frontier memory.
BATCH_CHUNK = 4096


def build_graph(num_nodes: int, *, attach: int = 5, seed: int = 0):
    """Power-law benchmark substrate (preferential attachment)."""
    return barabasi_albert_graph(num_nodes, attach, rng=seed)


def _measure(chunks, *, time_budget: float) -> tuple[int, float, bool]:
    """Run walk-producing thunks until done or over budget.

    ``chunks`` yields callables returning the number of walks generated.
    Returns (walks completed, elapsed seconds, truncated?).
    """
    done = 0
    truncated = False
    started = time.perf_counter()
    for thunk in chunks:
        done += thunk()
        if time.perf_counter() - started > time_budget:
            truncated = True
            break
    return done, time.perf_counter() - started, truncated


def bench_scalar(framework, starts, num_walks, length, time_budget):
    engine = framework.walk_engine
    rng = np.random.default_rng(1)

    def thunks():
        for v in starts:
            yield lambda v=v: len(
                [engine.walk(int(v), length, rng) for _ in range(num_walks)]
            )

    return _measure(thunks(), time_budget=time_budget)


def bench_batch(engine, starts, num_walks, length, time_budget):
    rng = np.random.default_rng(1)

    def thunks():
        for i in range(0, len(starts), BATCH_CHUNK):
            chunk = starts[i : i + BATCH_CHUNK]
            yield lambda c=chunk: len(
                engine.walk_chunk(
                    c, num_walks=num_walks, length=length, rng=rng
                )
            )

    return _measure(thunks(), time_budget=time_budget)


def run_scale(num_nodes, *, num_walks, length, time_budget, seed=0):
    graph = build_graph(num_nodes, seed=seed)
    model = Node2VecModel(0.25, 4.0)  # the paper's node2vec setting
    starts = np.flatnonzero(graph.degrees > 0)
    total_walks = len(starts) * num_walks

    # Budget: half of the all-alias footprint, so the optimizer must mix
    # sampler kinds — the regime the assignment-aware dispatch targets.
    # Priced off the cost table; nothing is materialised for the sizing.
    constants = compute_bounding_constants(graph, model)
    table = build_cost_table(graph, constants, CostParams())
    budget = 0.5 * float(table.memory[:, int(SamplerKind.ALIAS)].sum())
    framework = MemoryAwareFramework(
        graph, model, budget=budget, bounding_constants=constants, rng=0
    )

    configs = {}
    done, secs, trunc = bench_scalar(
        framework, starts, num_walks, length, time_budget
    )
    configs["scalar"] = (done, secs, trunc)

    naive_engine = BatchWalkEngine(graph, model)
    done, secs, trunc = bench_batch(
        naive_engine, starts, num_walks, length, time_budget
    )
    configs["batched_naive"] = (done, secs, trunc)

    aware_engine = framework.batch_engine()
    done, secs, trunc = bench_batch(
        aware_engine, starts, num_walks, length, time_budget
    )
    configs["assignment_aware_batch"] = (done, secs, trunc)

    engines = {}
    for name, (done, secs, trunc) in configs.items():
        engines[name] = {
            "walks_per_sec": round(done / secs, 2) if secs > 0 else None,
            "walks_timed": int(done),
            "seconds": round(secs, 3),
            "extrapolated": bool(trunc),
        }
    cache_stats = aware_engine.cache.stats() if aware_engine.cache else None
    counts = framework.assignment.counts()
    scalar_rate = engines["scalar"]["walks_per_sec"]
    aware_rate = engines["assignment_aware_batch"]["walks_per_sec"]
    return {
        "num_nodes": int(graph.num_nodes),
        "num_edges": int(graph.num_edges),
        "total_walks": int(total_walks),
        "budget_bytes": round(budget, 0),
        "assignment": {str(k): int(v) for k, v in counts.items()},
        "engines": engines,
        "cache": cache_stats,
        "speedup_batch_vs_scalar": (
            round(aware_rate / scalar_rate, 2) if scalar_rate else None
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small single-scale run for CI (seconds, not minutes)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless assignment-aware batch beats scalar",
    )
    parser.add_argument(
        "--output",
        default="BENCH_walks.json",
        help="result JSON path (default: BENCH_walks.json)",
    )
    parser.add_argument(
        "--time-budget",
        type=float,
        default=None,
        help="per-engine wall-clock budget in seconds per scale",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        scales = [2_000]
        num_walks, length = 2, 20
        time_budget = args.time_budget or 10.0
    else:
        scales = [5_000, 20_000, 50_000]
        num_walks, length = 10, 80  # the paper's node2vec workload
        time_budget = args.time_budget or 45.0

    results = []
    for num_nodes in scales:
        print(f"[bench_engine] scale {num_nodes} nodes ...", flush=True)
        entry = run_scale(
            num_nodes,
            num_walks=num_walks,
            length=length,
            time_budget=time_budget,
        )
        for name, stats in entry["engines"].items():
            print(
                f"  {name:>24}: {stats['walks_per_sec']:>10} walks/s"
                f"{'  (extrapolated)' if stats['extrapolated'] else ''}"
            )
        print(f"  speedup (aware batch / scalar): {entry['speedup_batch_vs_scalar']}")
        results.append(entry)

    report = {
        "benchmark": "walk-engine-trajectory",
        "mode": "smoke" if args.smoke else "full",
        "workload": {
            "graph": "barabasi-albert power law (attach=5)",
            "model": "node2vec a=0.25 b=4.0",
            "num_walks_per_node": num_walks,
            "length": length,
        },
        "methodology": (
            "walks/sec over start-major corpus generation; engines over "
            "their time budget are truncated and the rate extrapolated "
            "(per-walk cost is constant)"
        ),
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "results": results,
    }
    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"[bench_engine] wrote {output}")

    if args.check:
        failures = []
        for entry in results:
            scalar = entry["engines"]["scalar"]["walks_per_sec"]
            aware = entry["engines"]["assignment_aware_batch"]["walks_per_sec"]
            if scalar is None or aware is None or aware <= scalar:
                failures.append(
                    f"{entry['num_nodes']} nodes: batch {aware} <= scalar {scalar}"
                )
        if failures:
            print("[bench_engine] CHECK FAILED:", "; ".join(failures))
            return 1
        print("[bench_engine] check passed: batch beats scalar at every scale")
    return 0


if __name__ == "__main__":
    sys.exit(main())
