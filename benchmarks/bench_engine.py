"""Walk-engine trajectory benchmark: scalar vs batched-naive vs
assignment-aware batch.

Measures corpus generation throughput (walks/second) on power-law graphs
at several scales, for the three engine configurations the repository has
grown through:

1. **scalar** — the per-sample :class:`~repro.framework.WalkEngine` over
   the cost-optimised assignment (Algorithm 1, one interpreter round-trip
   per step per walk);
2. **batched-naive** — :class:`~repro.walks.BatchWalkEngine` with no
   sampler array: every node on the vectorised on-demand path;
3. **assignment-aware batch** — the same engine over the optimizer's
   sampler assignment plus a hot edge-state cache sized to the budget
   headroom.

Methodology: batch engines run the full workload in frontier chunks; the
scalar engine walks start nodes under a wall-clock budget and its rate is
extrapolated from the walks it completed (flagged ``extrapolated`` in the
output — the per-walk cost is constant, so the extrapolation is safe).

The assignment-aware configuration is additionally benchmarked once per
available kernel backend (``numpy`` always; ``numba`` when the soft dep
imports), as ``assignment_aware_batch`` and
``assignment_aware_batch[numba]`` — every backend consumes the identical
pre-drawn uniform stream, so the matrix measures pure kernel speed.

Usage::

    python benchmarks/bench_engine.py                  # full trajectory
    python benchmarks/bench_engine.py --smoke --check  # CI smoke gate
    python benchmarks/bench_engine.py --quick --check  # CI, no extrapolation
    python benchmarks/bench_engine.py --output BENCH_walks.json

``--check`` exits non-zero if any batch configuration fails to beat the
scalar engine at any scale.  ``--quick`` sizes the workload so every
engine finishes inside the budget: no rate is extrapolated, which makes
the numbers directly comparable across CI runs.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro import (
    CostParams,
    MemoryAwareFramework,
    Node2VecModel,
    build_cost_table,
    compute_bounding_constants,
)
from repro.cost import SamplerKind
from repro.graph.generators import barabasi_albert_graph
from repro.walks import BatchWalkEngine

#: starts handed to one walk_chunk call; bounds frontier memory.
BATCH_CHUNK = 4096


def kernel_backends() -> list[str]:
    """Backends to bench: numpy always, numba when importable."""
    backends = ["numpy"]
    if importlib.util.find_spec("numba") is not None:
        backends.append("numba")
    return backends


def numba_version() -> "str | None":
    """Version of the optional numba dep, None when absent."""
    if importlib.util.find_spec("numba") is None:
        return None
    import numba

    return str(numba.__version__)


def build_graph(num_nodes: int, *, attach: int = 5, seed: int = 0):
    """Power-law benchmark substrate (preferential attachment)."""
    return barabasi_albert_graph(num_nodes, attach, rng=seed)


def _measure(chunks, *, time_budget: float) -> tuple[int, float, bool]:
    """Run walk-producing thunks until done or over budget.

    ``chunks`` yields callables returning the number of walks generated.
    Returns (walks completed, elapsed seconds, truncated?).
    """
    done = 0
    truncated = False
    started = time.perf_counter()
    for thunk in chunks:
        done += thunk()
        if time.perf_counter() - started > time_budget:
            truncated = True
            break
    return done, time.perf_counter() - started, truncated


def bench_scalar(framework, starts, num_walks, length, time_budget):
    engine = framework.walk_engine
    rng = np.random.default_rng(1)

    def thunks():
        for v in starts:
            yield lambda v=v: len(
                [engine.walk(int(v), length, rng) for _ in range(num_walks)]
            )

    return _measure(thunks(), time_budget=time_budget)


def bench_batch(engine, starts, num_walks, length, time_budget):
    rng = np.random.default_rng(1)

    def thunks():
        for i in range(0, len(starts), BATCH_CHUNK):
            chunk = starts[i : i + BATCH_CHUNK]
            yield lambda c=chunk: len(
                engine.walk_chunk(
                    c, num_walks=num_walks, length=length, rng=rng
                )
            )

    return _measure(thunks(), time_budget=time_budget)


def run_scale(num_nodes, *, num_walks, length, time_budget, seed=0):
    graph = build_graph(num_nodes, seed=seed)
    model = Node2VecModel(0.25, 4.0)  # the paper's node2vec setting
    starts = np.flatnonzero(graph.degrees > 0)
    total_walks = len(starts) * num_walks

    # Budget: half of the all-alias footprint, so the optimizer must mix
    # sampler kinds — the regime the assignment-aware dispatch targets.
    # Priced off the cost table; nothing is materialised for the sizing.
    constants = compute_bounding_constants(graph, model)
    table = build_cost_table(graph, constants, CostParams())
    budget = 0.5 * float(table.memory[:, int(SamplerKind.ALIAS)].sum())
    framework = MemoryAwareFramework(
        graph, model, budget=budget, bounding_constants=constants, rng=0
    )

    configs = {}
    done, secs, trunc = bench_scalar(
        framework, starts, num_walks, length, time_budget
    )
    configs["scalar"] = (done, secs, trunc, None)

    naive_engine = BatchWalkEngine(graph, model)
    done, secs, trunc = bench_batch(
        naive_engine, starts, num_walks, length, time_budget
    )
    configs["batched_naive"] = (done, secs, trunc, "numpy")

    aware_engine = None
    for backend in kernel_backends():
        aware_engine = framework.batch_engine(backend=backend)
        # One tiny untimed chunk first: a compiled backend JITs (or loads
        # its on-disk cache) on first call, and that cost is setup, not
        # steady-state throughput.
        aware_engine.walk_chunk(
            starts[:8], num_walks=1, length=4, rng=np.random.default_rng(0)
        )
        done, secs, trunc = bench_batch(
            aware_engine, starts, num_walks, length, time_budget
        )
        key = (
            "assignment_aware_batch"
            if backend == "numpy"
            else f"assignment_aware_batch[{backend}]"
        )
        configs[key] = (done, secs, trunc, backend)

    engines = {}
    for name, (done, secs, trunc, backend) in configs.items():
        engines[name] = {
            "walks_per_sec": round(done / secs, 2) if secs > 0 else None,
            "walks_timed": int(done),
            "seconds": round(secs, 3),
            "extrapolated": bool(trunc),
        }
        if backend is not None:
            engines[name]["backend"] = backend
    cache_stats = aware_engine.cache.stats() if aware_engine.cache else None
    counts = framework.assignment.counts()
    scalar_rate = engines["scalar"]["walks_per_sec"]
    aware_rate = engines["assignment_aware_batch"]["walks_per_sec"]
    result = {
        "num_nodes": int(graph.num_nodes),
        "num_edges": int(graph.num_edges),
        "total_walks": int(total_walks),
        "budget_bytes": round(budget, 0),
        "assignment": {str(k): int(v) for k, v in counts.items()},
        "engines": engines,
        "cache": cache_stats,
        "speedup_batch_vs_scalar": (
            round(aware_rate / scalar_rate, 2) if scalar_rate else None
        ),
    }
    numba_entry = engines.get("assignment_aware_batch[numba]")
    if numba_entry is not None and aware_rate:
        result["speedup_numba_vs_numpy"] = round(
            numba_entry["walks_per_sec"] / aware_rate, 2
        )
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small single-scale run for CI (seconds, not minutes)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help=(
            "small single-scale run sized to finish inside the budget: "
            "no engine is truncated, no rate is extrapolated"
        ),
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless every batch config beats scalar",
    )
    parser.add_argument(
        "--output",
        default="BENCH_walks.json",
        help="result JSON path (default: BENCH_walks.json)",
    )
    parser.add_argument(
        "--time-budget",
        type=float,
        default=None,
        help="per-engine wall-clock budget in seconds per scale",
    )
    args = parser.parse_args(argv)

    if args.quick:
        # Sized so even the scalar engine completes the workload: every
        # `extrapolated` flag comes out False and runs compare cleanly.
        scales = [1_000]
        num_walks, length = 1, 10
        time_budget = args.time_budget or 600.0
    elif args.smoke:
        scales = [2_000]
        num_walks, length = 2, 20
        time_budget = args.time_budget or 10.0
    else:
        scales = [5_000, 20_000, 50_000]
        num_walks, length = 10, 80  # the paper's node2vec workload
        time_budget = args.time_budget or 45.0

    results = []
    for num_nodes in scales:
        print(f"[bench_engine] scale {num_nodes} nodes ...", flush=True)
        entry = run_scale(
            num_nodes,
            num_walks=num_walks,
            length=length,
            time_budget=time_budget,
        )
        for name, stats in entry["engines"].items():
            print(
                f"  {name:>24}: {stats['walks_per_sec']:>10} walks/s"
                f"{'  (extrapolated)' if stats['extrapolated'] else ''}"
            )
        print(f"  speedup (aware batch / scalar): {entry['speedup_batch_vs_scalar']}")
        results.append(entry)

    report = {
        "benchmark": "walk-engine-trajectory",
        "mode": "quick" if args.quick else ("smoke" if args.smoke else "full"),
        "workload": {
            "graph": "barabasi-albert power law (attach=5)",
            "model": "node2vec a=0.25 b=4.0",
            "num_walks_per_node": num_walks,
            "length": length,
        },
        "methodology": (
            "walks/sec over start-major corpus generation; engines over "
            "their time budget are truncated and the rate extrapolated "
            "(per-walk cost is constant)"
        ),
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "numba": numba_version(),
            "kernel_backends": kernel_backends(),
        },
        "results": results,
    }
    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"[bench_engine] wrote {output}")

    if args.check:
        failures = []
        for entry in results:
            scalar = entry["engines"]["scalar"]["walks_per_sec"]
            for name, stats in entry["engines"].items():
                if not name.startswith("assignment_aware_batch"):
                    continue
                rate = stats["walks_per_sec"]
                if scalar is None or rate is None or rate <= scalar:
                    failures.append(
                        f"{entry['num_nodes']} nodes: {name} {rate} "
                        f"<= scalar {scalar}"
                    )
        if failures:
            print("[bench_engine] CHECK FAILED:", "; ".join(failures))
            return 1
        print(
            "[bench_engine] check passed: every batch config beats scalar "
            "at every scale"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
