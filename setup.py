"""Legacy setup shim.

All project metadata lives in ``pyproject.toml``; this file only enables
``pip install -e . --no-use-pep517`` on offline machines that lack the
``wheel`` package required by PEP 660 editable builds.
"""

from setuptools import setup

setup()
